"""Canonical query identities for cross-query plan sharing.

Two users rarely submit byte-identical queries, but they very often submit
*isomorphic* ones: the same leaves declared in a different order, or the same
predicate repeated. Scheduling cost (the expensive part of serving a query)
depends only on the canonical identity, so the serving layer keys its plan
cache on it — "pay one, get hundreds".

:func:`canonicalize` maps any DNF-shaped tree to a :class:`CanonicalForm`:

* leaves inside each AND node are sorted by ``(stream, items, prob)``;
* *identical* leaves inside one AND node are deduplicated into a single
  pseudo-leaf with probability ``p**k``. Under the paper's model (leaves
  are independent, as with a Bernoulli oracle) this is exact: ``k``
  independent copies of the same ``(stream, items, p)`` predicate, evaluated
  back-to-back, cost exactly one window fetch and pass with probability
  ``p**k`` — so for scheduling purposes they *are* one leaf. With a
  data-driven oracle (:class:`~repro.engine.executor.PredicateOracle`) the
  copies are perfectly correlated instead, so the folded probability is an
  under-estimate (the true joint pass probability is ``p``); the schedule
  stays valid, just tuned to the independence assumption;
* AND nodes are sorted by their (already canonical) leaf tuples;
* the cost table is restricted to the streams actually used.

The canonical form remembers, for every canonical leaf, which original
global leaf indices it covers, so a schedule computed once on the canonical
tree transfers to every isomorphic original via :meth:`CanonicalForm.expand_schedule`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Sequence, Union

from repro.core.leaf import Leaf
from repro.core.schedule import Schedule, validate_schedule
from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.errors import InvalidTreeError
from repro.lang.serialize import tree_to_canonical_json

if TYPE_CHECKING:
    from repro.service.substore import InternedTree

__all__ = ["CanonicalForm", "canonicalize", "canonical_key", "quantize_prob"]

#: Probabilities are compared and keyed at this precision. Float arithmetic
#: on the way into a query (parsers, belief updates, ``p**k`` folds) leaves
#: ~1e-16 noise on semantically identical probabilities; comparing them with
#: exact ``==`` silently splits isomorphic queries into distinct canonical
#: keys and defeats the plan cache. 12 decimals is far below any meaningful
#: selectivity difference and far above accumulated rounding noise.
_PROB_DECIMALS = 12


def quantize_prob(prob: float) -> float:
    """``prob`` rounded to the canonical comparison precision (12 decimals)."""
    return round(float(prob), _PROB_DECIMALS)

TreeLike = Union[AndTree, DnfTree, QueryTree]


@dataclass(frozen=True)
class CanonicalForm:
    """A tree's canonical identity plus the leaf mapping back to the original.

    Attributes
    ----------
    key:
        Stable hex digest identifying the canonical tree (including costs).
        Equal for isomorphic trees, distinct otherwise.
    tree:
        The canonical :class:`DnfTree` (sorted, deduplicated). Schedulers run
        on this tree.
    leaf_map:
        ``leaf_map[g]`` is the tuple of *original-tree* global leaf indices
        covered by canonical leaf ``g`` (length > 1 when duplicates were
        folded).
    original_size:
        Leaf count of the original tree (for schedule validation).
    interned:
        The hash-consed :class:`~repro.service.substore.InternedTree` for
        this identity, when the form was produced through a
        :class:`~repro.service.substore.SubtreeStore` (None on the plain
        :func:`canonicalize` path). Carries per-AND-clause identities so the
        plan cache can share scheduling state below whole-tree granularity;
        excluded from equality, and pickling it re-interns on arrival.
    """

    key: str
    tree: DnfTree
    leaf_map: tuple[tuple[int, ...], ...]
    original_size: int
    interned: "InternedTree | None" = field(default=None, compare=False, repr=False)

    @property
    def deduped(self) -> bool:
        """True when at least two original leaves were folded together."""
        return any(len(group) > 1 for group in self.leaf_map)

    @cached_property
    def origin_to_canonical(self) -> tuple[int, ...]:
        """Inverse of :attr:`leaf_map`: original leaf index -> canonical leaf index."""
        inverse = [0] * self.original_size
        for canonical_g, group in enumerate(self.leaf_map):
            for original_g in group:
                inverse[original_g] = canonical_g
        return tuple(inverse)

    @property
    def fold_sizes(self) -> tuple[int, ...]:
        """Number of original leaves folded into each canonical leaf."""
        return tuple(len(group) for group in self.leaf_map)

    def reprobed_tree(self, probs: Sequence[float]) -> DnfTree:
        """The canonical tree with its leaf probabilities replaced.

        ``probs[g]`` becomes canonical leaf ``g``'s success probability —
        the structure (streams, items, AND grouping) is untouched, so a
        schedule of the returned tree is a valid schedule of :attr:`tree`.
        This is what incremental re-planning schedules against.
        """
        if len(probs) != self.tree.size:
            raise InvalidTreeError(
                f"need {self.tree.size} probabilities, got {len(probs)}"
            )
        return _with_leaf_probs(self.tree, probs)

    def reprobed_original(self, tree: DnfTree, base_probs: Sequence[float]) -> DnfTree:
        """An *original* tree re-probed with per-canonical-leaf base probabilities.

        Each original leaf takes the (per-copy) probability of the canonical
        leaf covering it — the original-tree counterpart of
        :meth:`reprobed_tree`, used to carry a re-plan's belief back to the
        registered query.
        """
        if tree.size != self.original_size:
            raise InvalidTreeError(
                f"canonical form covers {self.original_size} leaves, tree has {tree.size}"
            )
        if len(base_probs) != len(self.leaf_map):
            raise InvalidTreeError(
                f"need {len(self.leaf_map)} probabilities, got {len(base_probs)}"
            )
        origin = self.origin_to_canonical
        return _with_leaf_probs(
            tree, [base_probs[origin[g]] for g in range(tree.size)]
        )

    def expand_schedule(self, schedule: Schedule) -> Schedule:
        """Translate a canonical-tree schedule into an original-tree schedule.

        Each canonical leaf expands to its covered original leaves,
        back-to-back (the later copies hit a warm cache, so adjacency
        preserves the canonical schedule's cost structure exactly).
        """
        schedule = validate_schedule(self.tree, schedule)
        expanded: list[int] = []
        for g in schedule:
            expanded.extend(self.leaf_map[g])
        if len(expanded) != self.original_size:
            raise InvalidTreeError(
                f"canonical form covers {len(expanded)} leaves, original has {self.original_size}"
            )
        return tuple(expanded)


def _with_leaf_probs(tree: DnfTree, probs: Sequence[float]) -> DnfTree:
    """``tree`` with leaf ``g``'s probability replaced by ``probs[g]``."""
    groups: list[list[Leaf]] = []
    g = 0
    for group in tree.ands:
        new_group = []
        for leaf in group:
            new_group.append(leaf.with_prob(float(probs[g])))
            g += 1
        groups.append(new_group)
    return DnfTree(groups, dict(tree.costs))


def _as_dnf(tree: TreeLike) -> DnfTree:
    if isinstance(tree, DnfTree):
        return tree
    if isinstance(tree, AndTree):
        return tree.to_dnf()
    if isinstance(tree, QueryTree):
        return tree.as_dnf()
    raise InvalidTreeError(f"cannot canonicalize {type(tree).__name__}")


def canonicalize(tree: TreeLike) -> CanonicalForm:
    """Compute the canonical form of a DNF-shaped tree.

    Accepts :class:`AndTree` (viewed as a one-AND DNF), :class:`DnfTree`,
    and DNF-shaped :class:`QueryTree` (raises otherwise, mirroring
    :meth:`QueryTree.as_dnf`).
    """
    dnf = _as_dnf(tree)
    # Per AND node: sort leaf positions canonically, then fold runs of
    # identical (stream, items, prob) leaves into one pseudo-leaf.
    canon_groups: list[tuple[tuple[Leaf, ...], tuple[tuple[int, ...], ...]]] = []
    for a, group in enumerate(dnf.ands):
        order = sorted(
            range(len(group)),
            key=lambda j: (group[j].stream, group[j].items, quantize_prob(group[j].prob)),
        )
        leaves: list[Leaf] = []
        covered: list[tuple[int, ...]] = []
        for j in order:
            leaf = dnf.ands[a][j]
            g_orig = dnf.gindex(a, j)
            if leaves and (
                leaves[-1].stream == leaf.stream
                and leaves[-1].items == leaf.items
                and _same_base_prob(covered[-1], dnf, leaf)
            ):
                merged = leaves[-1]
                leaves[-1] = Leaf(
                    merged.stream, merged.items, merged.prob * leaf.prob
                )
                covered[-1] = covered[-1] + (g_orig,)
            else:
                leaves.append(Leaf(leaf.stream, leaf.items, leaf.prob))
                covered.append((g_orig,))
        canon_groups.append((tuple(leaves), tuple(covered)))
    # Sort AND nodes by their canonical leaf tuples (stable identity).
    group_order = sorted(
        range(len(canon_groups)),
        key=lambda i: tuple(
            (leaf.stream, leaf.items, quantize_prob(leaf.prob))
            for leaf in canon_groups[i][0]
        ),
    )
    ands = [list(canon_groups[i][0]) for i in group_order]
    leaf_map: list[tuple[int, ...]] = []
    for i in group_order:
        leaf_map.extend(canon_groups[i][1])
    used = {leaf.stream for group in ands for leaf in group}
    costs = {name: dnf.costs[name] for name in sorted(used)}
    canon_tree = DnfTree(ands, costs)
    # The key payload quantizes probabilities to the same precision as the
    # fold/sort comparisons above, so isomorphs whose probs differ only by
    # float-arithmetic noise land on one key. The canonical *tree* keeps the
    # exact probabilities (schedulers and re-planning see unrounded values).
    payload_tree = _with_leaf_probs(
        canon_tree, [quantize_prob(leaf.prob) for leaf in canon_tree.leaves]
    )
    payload = tree_to_canonical_json(payload_tree)
    key = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return CanonicalForm(
        key=key,
        tree=canon_tree,
        leaf_map=tuple(leaf_map),
        original_size=dnf.size,
    )


def _same_base_prob(covered: tuple[int, ...], dnf: DnfTree, leaf: Leaf) -> bool:
    """True when every original leaf already folded here has ``leaf``'s prob.

    The folded pseudo-leaf carries the *product* probability, so comparing
    against it directly would never match; compare against the original run.
    Probabilities are compared quantized (:func:`quantize_prob`): exact
    float ``==`` split isomorphs differing by arithmetic noise into
    distinct canonical keys.
    """
    first = dnf.leaves[covered[0]]
    return quantize_prob(first.prob) == quantize_prob(leaf.prob)


def canonical_key(tree: TreeLike) -> str:
    """Shorthand for ``canonicalize(tree).key``."""
    return canonicalize(tree).key
