"""Synthetic serving populations for demos, tests and benchmarks.

A realistic serving population is *not* a set of independent random trees:
millions of users run a handful of popular query shapes (dashboards, alert
templates) with long-tail one-offs. :func:`synthetic_population` models this
directly: it draws a small pool of template trees over one shared stream
environment, then emits each query as a random *isomorph* (shuffled AND and
leaf order) of a template — exactly the traffic a canonical plan cache is
built to absorb.
"""

from __future__ import annotations

import numpy as np

from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.errors import StreamError
from repro.streams.registry import StreamRegistry
from repro.streams.sources import GaussianSource
from repro.streams.stream import StreamSpec

__all__ = ["synthetic_registry", "shuffled_isomorph", "synthetic_population"]


def synthetic_registry(
    n_streams: int, *, seed: int = 0, c_range: tuple[float, float] = (0.5, 4.0)
) -> StreamRegistry:
    """A registry of ``n_streams`` Gaussian streams with random per-item costs."""
    if n_streams < 1:
        raise StreamError(f"need at least one stream, got {n_streams}")
    rng = np.random.default_rng(seed)
    registry = StreamRegistry()
    for k in range(n_streams):
        cost = float(rng.uniform(*c_range))
        registry.add(
            StreamSpec(f"S{k}", cost),
            GaussianSource(mean=0.0, std=1.0, seed=seed * 7919 + k),
        )
    return registry


def shuffled_isomorph(tree: DnfTree, rng: np.random.Generator) -> DnfTree:
    """A tree equal to ``tree`` up to AND-node and within-AND leaf order."""
    groups = [list(group) for group in tree.ands]
    for group in groups:
        rng.shuffle(group)
    order = rng.permutation(len(groups))
    return DnfTree([groups[i] for i in order], dict(tree.costs))


def synthetic_population(
    n_queries: int,
    registry: StreamRegistry,
    *,
    n_templates: int | None = None,
    seed: int = 0,
    n_ands: tuple[int, int] = (1, 3),
    leaves_per_and: tuple[int, int] = (1, 4),
    d_range: tuple[int, int] = (1, 6),
    p_range: tuple[float, float] = (0.05, 0.95),
) -> list[tuple[str, DnfTree]]:
    """Draw ``n_queries`` named queries from a pool of shared templates.

    ``n_templates`` defaults to ``max(1, n_queries // 10)`` — a 10:1
    query-to-shape ratio, which makes a canonical plan cache hit on roughly
    90% of admissions. Every query is an isomorphic shuffle of its template,
    so the population is realistic *and* adversarial for naive (syntactic)
    caching.
    """
    if n_queries < 1:
        raise StreamError(f"need at least one query, got {n_queries}")
    if n_templates is None:
        n_templates = max(1, n_queries // 10)
    elif n_templates < 1:
        raise StreamError(f"need at least one template, got {n_templates}")
    rng = np.random.default_rng(seed)
    names = list(registry.names)
    costs = registry.cost_table()

    def random_template() -> DnfTree:
        groups = []
        for _ in range(int(rng.integers(n_ands[0], n_ands[1] + 1))):
            group = []
            for _ in range(int(rng.integers(leaves_per_and[0], leaves_per_and[1] + 1))):
                stream = names[int(rng.integers(len(names)))]
                group.append(
                    Leaf(
                        stream,
                        int(rng.integers(d_range[0], d_range[1] + 1)),
                        float(rng.uniform(*p_range)),
                    )
                )
            groups.append(group)
        used = {leaf.stream for group in groups for leaf in group}
        return DnfTree(groups, {name: costs[name] for name in used})

    templates = [random_template() for _ in range(n_templates)]
    population: list[tuple[str, DnfTree]] = []
    for q in range(n_queries):
        template = templates[int(rng.integers(len(templates)))]
        population.append((f"q{q:04d}", shuffled_isomorph(template, rng)))
    return population
