"""Hash-consed canonical node store: sub-tree identity for multi-query sharing.

Whole-tree canonical keys (:mod:`repro.service.canonical`) only earn sharing
when two queries are isomorphic end to end. The MQO literature (Roy et al.;
Kathuria & Sudarshan — PAPERS.md) shows the larger win is sharing *common
subexpressions*: two different queries that contain the same AND clause, or
probe the same ``(stream, items, prob)`` leaf, should reuse each other's
scheduling state and selectivity beliefs even though their whole-tree keys
differ.

This module interns every canonical leaf, AND clause and DNF tree in a
:class:`SubtreeStore` — hash-consing in the classic sense:

* each distinct structure exists **once** per store, so isomorphism checks
  collapse to pointer equality (``a is b``) and memory stays bounded by the
  number of *distinct* shapes, not registered queries;
* interned nodes are immutable (``__slots__``, no ``__dict__``, raising
  ``__setattr__``) — enforced repo-wide by lint rule RPR007 outside this
  module;
* intern tables hold nodes through a :class:`weakref.WeakValueDictionary`,
  so shapes no registered query references any more are reclaimed instead
  of pinned forever;
* pickling an interned node ships its *structure* and re-interns on arrival
  (``__reduce__``), so identity semantics survive the worker pipe: a
  :class:`~repro.service.canonical.CanonicalForm` that crosses to a spawned
  shard re-lands in that process's default store.

The store also subsumes two hot-path memos: a bounded canonicalization memo
(admissions of an already-seen tree skip :func:`repro.service.canonical.canonicalize`
entirely) and a per-tree stream-weight memo the cluster partitioner reads
instead of recomputing stream-set intersections per placement decision.

The store itself is deliberately process-local (it holds an ``RLock`` and
identity is per-process by construction); workers each grow their own via
:func:`default_store`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Iterator, Mapping
from weakref import WeakValueDictionary

from repro.core.tree import DnfTree
from repro.errors import ReproError
from repro.service.canonical import (
    CanonicalForm,
    TreeLike,
    _as_dnf,
    canonicalize,
    quantize_prob,
)

__all__ = [
    "InternedLeaf",
    "InternedClause",
    "InternedTree",
    "SubtreeStore",
    "default_store",
]

#: ``(stream, items, prob)`` — the structural identity of one canonical leaf.
LeafSpec = tuple[str, int, float]
#: The leaves of one canonical AND clause, in canonical order.
ClauseSpec = tuple[LeafSpec, ...]
#: ``((stream, cost), ...)`` sorted by stream name.
CostSpec = tuple[tuple[str, float], ...]

_IMMUTABLE = "{0} is interned and immutable; build a new node via the store"


class InternedLeaf:
    """One hash-consed canonical leaf. Exactly one instance per identity."""

    __slots__ = ("stream", "items", "prob", "_hash", "__weakref__")

    stream: str
    items: int
    prob: float
    _hash: int

    def __init__(self, stream: str, items: int, prob: float) -> None:
        object.__setattr__(self, "stream", str(stream))
        object.__setattr__(self, "items", int(items))
        object.__setattr__(self, "prob", float(prob))
        object.__setattr__(self, "_hash", hash((self.stream, self.items, self.prob)))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(_IMMUTABLE.format(type(self).__name__))

    def __delattr__(self, name: str) -> None:
        raise AttributeError(_IMMUTABLE.format(type(self).__name__))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"InternedLeaf({self.stream!r}, {self.items}, {self.prob})"

    @property
    def spec(self) -> LeafSpec:
        return (self.stream, self.items, self.prob)

    def __reduce__(self) -> tuple[Any, ...]:
        # Ship structure, re-intern in the receiving process's default
        # store: identity semantics (pointer equality) survive the pipe.
        return (_reintern_leaf, self.spec)


class InternedClause:
    """One hash-consed canonical AND clause: a tuple of interned leaves.

    ``key`` is a stable digest of the clause's leaves plus the cost-table
    slice its streams use — the unit of *partial* plan sharing: two trees
    with different whole-tree keys but one clause key in common reuse the
    clause's Algorithm-1 order, isolated cost and success probability.
    """

    __slots__ = ("leaves", "costs", "key", "_hash", "__weakref__")

    leaves: tuple[InternedLeaf, ...]
    costs: CostSpec
    key: str
    _hash: int

    def __init__(
        self, leaves: tuple[InternedLeaf, ...], costs: CostSpec, key: str
    ) -> None:
        object.__setattr__(self, "leaves", tuple(leaves))
        object.__setattr__(self, "costs", tuple(costs))
        object.__setattr__(self, "key", str(key))
        object.__setattr__(self, "_hash", hash(self.key))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(_IMMUTABLE.format(type(self).__name__))

    def __delattr__(self, name: str) -> None:
        raise AttributeError(_IMMUTABLE.format(type(self).__name__))

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.leaves)

    def __iter__(self) -> Iterator[InternedLeaf]:
        return iter(self.leaves)

    def __repr__(self) -> str:
        return f"InternedClause({len(self.leaves)} leaves, key={self.key[:12]}...)"

    @property
    def spec(self) -> ClauseSpec:
        return tuple(leaf.spec for leaf in self.leaves)

    @property
    def streams(self) -> frozenset[str]:
        return frozenset(leaf.stream for leaf in self.leaves)

    def __reduce__(self) -> tuple[Any, ...]:
        return (_reintern_clause, (self.spec, self.costs))


class InternedTree:
    """One hash-consed canonical DNF tree: a tuple of interned clauses.

    ``key`` is the whole-tree canonical key (the same digest
    :func:`repro.service.canonical.canonicalize` computes), carried verbatim
    so store-produced identities are interchangeable with plain canonical
    keys everywhere — plan cache, adaptive controller, migration snapshots.
    """

    __slots__ = ("clauses", "costs", "key", "_hash", "__weakref__")

    clauses: tuple[InternedClause, ...]
    costs: CostSpec
    key: str
    _hash: int

    def __init__(
        self, clauses: tuple[InternedClause, ...], costs: CostSpec, key: str
    ) -> None:
        object.__setattr__(self, "clauses", tuple(clauses))
        object.__setattr__(self, "costs", tuple(costs))
        object.__setattr__(self, "key", str(key))
        object.__setattr__(self, "_hash", hash(self.key))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(_IMMUTABLE.format(type(self).__name__))

    def __delattr__(self, name: str) -> None:
        raise AttributeError(_IMMUTABLE.format(type(self).__name__))

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[InternedClause]:
        return iter(self.clauses)

    def __repr__(self) -> str:
        return f"InternedTree({len(self.clauses)} clauses, key={self.key[:12]}...)"

    @property
    def clause_keys(self) -> tuple[str, ...]:
        return tuple(clause.key for clause in self.clauses)

    def __reduce__(self) -> tuple[Any, ...]:
        return (
            _reintern_tree,
            (tuple(clause.spec for clause in self.clauses), self.costs, self.key),
        )


def _clause_key(spec: ClauseSpec, costs: CostSpec) -> str:
    """Stable digest of one canonical AND clause (leaves + cost slice)."""
    payload = json.dumps(
        {
            "leaves": [[s, i, quantize_prob(p)] for s, i, p in spec],
            "costs": [[s, c] for s, c in costs],
        },
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SubtreeStore:
    """Process-wide hash-consing store for canonical query structure.

    Thread-safe behind one reentrant lock (intern operations nest:
    interning a tree interns its clauses, which intern their leaves).
    Intern tables are weak-valued — nodes live exactly as long as something
    outside the store (a registered query's :class:`CanonicalForm`, a plan
    cache entry's planner closure) keeps them alive.

    Parameters
    ----------
    memo_capacity:
        Bound on the canonicalization memo and the stream-weight memo
        (LRU; structural fingerprint -> :class:`CanonicalForm`).
    """

    def __init__(self, memo_capacity: int = 4096) -> None:
        if memo_capacity < 1:
            raise ReproError(
                f"substore memo capacity must be >= 1, got {memo_capacity}"
            )
        self.memo_capacity = memo_capacity
        self._lock = threading.RLock()
        self._leaves: WeakValueDictionary[LeafSpec, InternedLeaf] = WeakValueDictionary()
        self._clauses: WeakValueDictionary[tuple[ClauseSpec, CostSpec], InternedClause] = (
            WeakValueDictionary()
        )
        self._trees: WeakValueDictionary[str, InternedTree] = WeakValueDictionary()
        #: structural fingerprint of the *original* tree -> interned CanonicalForm.
        self._memo: OrderedDict[Any, CanonicalForm] = OrderedDict()
        #: (tree key, cost signature) -> stream weight vector.
        self._weights: OrderedDict[tuple[str, CostSpec], dict[str, float]] = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0

    def __getstate__(self) -> dict:
        raise TypeError(
            "SubtreeStore is process-local: interned identity is per-process "
            "by construction. Pickle the interned nodes themselves (they "
            "re-intern on arrival) and build a fresh store in the worker."
        )

    # -- interning ---------------------------------------------------------

    def leaf(self, stream: str, items: int, prob: float) -> InternedLeaf:
        """The unique :class:`InternedLeaf` for ``(stream, items, prob)``."""
        spec = (str(stream), int(items), float(prob))
        with self._lock:
            node = self._leaves.get(spec)
            if node is None:
                node = InternedLeaf(*spec)
                self._leaves[spec] = node
            return node

    def clause(self, spec: ClauseSpec, costs: CostSpec) -> InternedClause:
        """The unique :class:`InternedClause` for ``spec`` under ``costs``."""
        spec = tuple((str(s), int(i), float(p)) for s, i, p in spec)
        costs = tuple((str(s), float(c)) for s, c in costs)
        with self._lock:
            node = self._clauses.get((spec, costs))
            if node is None:
                leaves = tuple(self.leaf(*leaf_spec) for leaf_spec in spec)
                node = InternedClause(leaves, costs, _clause_key(spec, costs))
                self._clauses[(spec, costs)] = node
            return node

    def tree(
        self, clause_specs: tuple[ClauseSpec, ...], costs: CostSpec, key: str
    ) -> InternedTree:
        """The unique :class:`InternedTree` for whole-tree canonical ``key``.

        Clause cost slices are re-derived by restricting ``costs`` to each
        clause's streams — the same restriction :meth:`intern_form` applies,
        so a node rebuilt from its pickled spec lands on identical clause
        keys.
        """
        costs = tuple((str(s), float(c)) for s, c in costs)
        with self._lock:
            node = self._trees.get(key)
            if node is None:
                clauses = []
                for spec in clause_specs:
                    used = {s for s, _, _ in spec}
                    slice_ = tuple((s, c) for s, c in costs if s in used)
                    clauses.append(self.clause(spec, slice_))
                node = InternedTree(tuple(clauses), costs, key)
                self._trees[key] = node
            return node

    def intern_form(self, form: CanonicalForm) -> CanonicalForm:
        """``form`` with its :attr:`~CanonicalForm.interned` node attached."""
        if form.interned is not None:
            return form
        costs = tuple(sorted(form.tree.costs.items()))
        clause_specs = tuple(
            tuple((leaf.stream, leaf.items, leaf.prob) for leaf in group)
            for group in form.tree.ands
        )
        return dataclasses.replace(
            form, interned=self.tree(clause_specs, costs, form.key)
        )

    # -- canonicalization memo --------------------------------------------

    def canonicalize(self, tree: TreeLike) -> CanonicalForm:
        """Memoized :func:`repro.service.canonical.canonicalize` + interning.

        The memo key is the *original* tree's structural fingerprint (exact
        leaf tuples per AND plus the cost table), so byte-identical
        re-registrations skip sorting/folding/hashing entirely; distinct
        isomorphs still converge on the same interned nodes through the
        intern tables.
        """
        dnf = _as_dnf(tree)
        fingerprint = self._fingerprint(dnf)
        with self._lock:
            cached = self._memo.get(fingerprint)
            if cached is not None:
                self.memo_hits += 1
                self._memo.move_to_end(fingerprint)
                return cached
        form = self.intern_form(canonicalize(dnf))
        with self._lock:
            cached = self._memo.get(fingerprint)
            if cached is not None:
                self.memo_hits += 1
                self._memo.move_to_end(fingerprint)
                return cached
            self.memo_misses += 1
            self._memo[fingerprint] = form
            while len(self._memo) > self.memo_capacity:
                self._memo.popitem(last=False)
        return form

    @staticmethod
    def _fingerprint(dnf: DnfTree) -> tuple[Any, ...]:
        return (
            tuple(
                tuple((leaf.stream, leaf.items, leaf.prob) for leaf in group)
                for group in dnf.ands
            ),
            tuple(sorted(dnf.costs.items())),
        )

    # -- partitioner weights ----------------------------------------------

    def stream_weights(self, tree: TreeLike, costs: Mapping[str, float]) -> dict[str, float]:
        """Per-stream max acquisition weight, memoized by canonical identity.

        Value-identical to :func:`repro.cluster.partition.stream_weight_vector`
        (weights depend only on streams/items/costs; canonical leaf folding
        drops exact duplicates, which cannot change a per-stream max), but
        computed once per *canonical* tree instead of once per registered
        query — the partitioner and shard signatures read this.
        """
        form = self.canonicalize(tree)
        interned = form.interned
        if interned is None:  # pragma: no cover - canonicalize always interns
            interned = self.intern_form(form).interned
            assert interned is not None
        return self.interned_weights(interned, costs)

    def interned_weights(
        self, node: InternedTree, costs: Mapping[str, float]
    ) -> dict[str, float]:
        """Stream weight vector of an interned tree under a cost table."""
        signature = tuple(sorted((str(s), float(c)) for s, c in costs.items()))
        memo_key = (node.key, signature)
        with self._lock:
            cached = self._weights.get(memo_key)
            if cached is not None:
                self._weights.move_to_end(memo_key)
                return dict(cached)
        weights: dict[str, float] = {}
        table = dict(signature)
        for clause in node.clauses:
            for leaf in clause.leaves:
                weight = leaf.items * table.get(leaf.stream, 1.0)
                if weight > weights.get(leaf.stream, 0.0):
                    weights[leaf.stream] = weight
        with self._lock:
            self._weights[memo_key] = weights
            while len(self._weights) > self.memo_capacity:
                self._weights.popitem(last=False)
        return dict(weights)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._trees)

    def stats(self) -> dict[str, float]:
        """Counter snapshot: live node counts plus memo behaviour."""
        with self._lock:
            hits, misses = self.memo_hits, self.memo_misses
            total = hits + misses
            return {
                "leaves": float(len(self._leaves)),
                "clauses": float(len(self._clauses)),
                "trees": float(len(self._trees)),
                "memo_size": float(len(self._memo)),
                "memo_capacity": float(self.memo_capacity),
                "memo_hits": float(hits),
                "memo_misses": float(misses),
                "memo_hit_rate": hits / total if total else 0.0,
            }

    def clear_memo(self) -> None:
        """Drop the canonicalization and weight memos (intern tables stay)."""
        with self._lock:
            self._memo.clear()
            self._weights.clear()


# One store per process, created lazily on first use. A plain dict with
# atomic ``setdefault`` (no module-level lock: spawned workers re-import this
# module, and import-time synchronization primitives are exactly what lint
# rule RPR004 exists to keep out of the worker's import closure).
_SINGLETON: dict[str, SubtreeStore] = {}


def default_store() -> SubtreeStore:
    """The process-wide default :class:`SubtreeStore` (created on first call)."""
    store = _SINGLETON.get("store")
    if store is None:
        store = _SINGLETON.setdefault("store", SubtreeStore())
    return store


def _reintern_leaf(stream: str, items: int, prob: float) -> InternedLeaf:
    """Unpickle hook: re-intern in the receiving process's default store."""
    return default_store().leaf(stream, items, prob)


def _reintern_clause(spec: ClauseSpec, costs: CostSpec) -> InternedClause:
    """Unpickle hook: re-intern in the receiving process's default store."""
    return default_store().clause(spec, costs)


def _reintern_tree(
    clause_specs: tuple[ClauseSpec, ...], costs: CostSpec, key: str
) -> InternedTree:
    """Unpickle hook: re-intern in the receiving process's default store."""
    return default_store().tree(clause_specs, costs, key)
