"""LRU plan cache: pay the scheduling cost once per canonical query.

Scheduling is the expensive part of admitting a query (the dynamic
AND-ordered heuristics re-evaluate Proposition 2 prefixes; the exhaustive
optimum is exponential). In a population of millions of users the same query
shapes recur constantly, so the serving layer caches *canonical* schedules:
the key is ``(canonical tree key, scheduler name)`` and the value is the
schedule of the canonical tree, which :meth:`~repro.service.canonical.CanonicalForm.expand_schedule`
translates to each registered original.

Below the whole-tree cache sits a **clause cache**: per-AND-clause plans
(Algorithm-1 order, isolated cost, success probability) keyed by interned
clause identity (:mod:`repro.service.substore`). A query whose whole-tree
key misses still reuses every clause it shares with previously admitted
queries — the AND-ordered schedulers' per-block planning is served through
a thread-local :func:`~repro.core.heuristics.and_ordered.block_planner`
installed around exactly the ``schedule()`` call the cache owns, so the
computed schedule is bit-identical to the uncached path (clause plans are
deterministic functions of the clause alone).

The cache is a plain ``OrderedDict`` LRU guarded by a lock — safe to share
between a server and background admission threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.heuristics.and_ordered import (
    and_block_local_plan,
    block_planner,
)
from repro.core.heuristics.base import Scheduler
from repro.core.schedule import Schedule
from repro.core.tree import DnfTree
from repro.errors import ReproError
from repro.service.canonical import CanonicalForm
from repro.service.substore import InternedTree

__all__ = ["CachedPlan", "PlanCache"]

#: One clause's cached plan: local Algorithm-1 order, isolated cost, prob.
ClausePlan = tuple[tuple[int, ...], float, float]


@dataclass(frozen=True)
class CachedPlan:
    """A scheduling decision for one canonical tree."""

    key: str
    scheduler_name: str
    schedule: Schedule
    cost: float


class PlanCache:
    """Bounded LRU cache of canonical schedules (plus per-clause plans).

    Parameters
    ----------
    capacity:
        Maximum number of cached whole-tree plans; the least-recently-used
        entry is evicted on overflow.
    clause_capacity:
        Maximum number of cached per-AND-clause plans (defaults to
        ``4 * capacity``: clauses are smaller and shared more widely than
        whole trees, so the sub-tree tier earns a deeper pool).
    """

    def __init__(self, capacity: int = 256, *, clause_capacity: int | None = None) -> None:
        if capacity < 1:
            raise ReproError(f"plan cache capacity must be >= 1, got {capacity}")
        if clause_capacity is None:
            clause_capacity = 4 * capacity
        if clause_capacity < 1:
            raise ReproError(
                f"clause cache capacity must be >= 1, got {clause_capacity}"
            )
        self.capacity = capacity
        self.clause_capacity = clause_capacity
        self._plans: OrderedDict[tuple[str, str], CachedPlan] = OrderedDict()
        #: canonical key -> scheduler names cached for it. Kept in lockstep
        #: with ``_plans`` so invalidate is O(entries dropped), not
        #: O(cache size) — a replan storm must not stall admissions.
        self._by_key: dict[str, set[str]] = {}
        #: interned clause key -> (local order, isolated cost, prob).
        self._clause_plans: OrderedDict[str, ClausePlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.clause_hits = 0
        self.clause_misses = 0

    def __getstate__(self) -> dict:
        # Drop the lock (process-local) so a cache snapshot can cross a
        # process boundary; counters and the LRU order pickle as-is.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: tuple[str, str]) -> bool:
        with self._lock:
            return key in self._plans

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried).

        The ``hits``/``misses`` pair is snapshotted under the lock so a
        concurrent admission cannot be observed between the two reads.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def subtree_hit_rate(self) -> float:
        """Fraction of per-AND-clause plans served from the clause cache.

        This is the partial-sharing signal: on a population with shared
        clauses but no whole-tree isomorphs, :attr:`hit_rate` stays ~0 while
        this climbs toward ``(n - distinct clauses) / n``.
        """
        with self._lock:
            hits, misses = self.clause_hits, self.clause_misses
        total = hits + misses
        return hits / total if total else 0.0

    def get(self, key: str, scheduler_name: str) -> CachedPlan | None:
        """Plan for ``(key, scheduler_name)``, refreshing its recency; None on miss.

        Pure lookup: adjusts recency but not the hit/miss counters, which
        belong to :meth:`plan`.
        """
        with self._lock:
            plan = self._plans.get((key, scheduler_name))
            if plan is not None:
                self._plans.move_to_end((key, scheduler_name))
            return plan

    def plan(self, form: CanonicalForm, scheduler: Scheduler) -> CachedPlan:
        """Schedule ``form.tree`` with ``scheduler``, through the cache.

        The returned plan's schedule addresses the *canonical* tree; callers
        expand it per registered query.
        """
        cache_key = (form.key, scheduler.name)
        with self._lock:
            plan = self._plans.get(cache_key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(cache_key)
                return plan
        # Schedule outside the lock: heuristics can be slow and the result is
        # deterministic, so a racing duplicate computation is harmless. The
        # miss is counted at insert time so two racing admissions of the same
        # key settle as exactly one miss (the insert winner) and one hit (the
        # loser, which is served the winner's entry), keeping the counters
        # consistent with the cache's observable behaviour.
        schedule = self._schedule_canonical(form, scheduler)
        from repro.core.cost import dnf_schedule_cost

        plan = CachedPlan(
            key=form.key,
            scheduler_name=scheduler.name,
            schedule=tuple(schedule),
            cost=dnf_schedule_cost(form.tree, schedule, validate=True),
        )
        with self._lock:
            existing = self._plans.get(cache_key)
            if existing is not None:
                self.hits += 1
                self._plans.move_to_end(cache_key)
                return existing
            self.misses += 1
            self._insert_locked(cache_key, plan)
        return plan

    def _schedule_canonical(self, form: CanonicalForm, scheduler: Scheduler) -> Schedule:
        """Run ``scheduler`` on the canonical tree, reusing cached clause plans.

        When the form carries interned identity, AND-block plans are served
        through the clause cache (and freshly computed blocks published to
        it). Clause plans are deterministic functions of the clause's leaves
        and cost slice, so the resulting schedule is bit-identical to the
        uncached computation — sharing changes *where the time goes*, never
        the answer. Schedulers outside the AND-ordered family simply ignore
        the installed planner.
        """
        interned = form.interned
        if interned is None:
            return tuple(scheduler.schedule(form.tree))

        def planner(tree: DnfTree) -> list[tuple[list[int], float, float]] | None:
            if tree is not form.tree:
                # Re-entrant scheduling of a *different* tree on this thread
                # (belief re-probes, nested heuristics): decline, compute.
                return None
            return self._clause_block_plans(tree, interned)

        with block_planner(planner):
            return tuple(scheduler.schedule(form.tree))

    def _clause_block_plans(
        self, tree: DnfTree, interned: InternedTree
    ) -> list[tuple[list[int], float, float]]:
        """All AND blocks' plans for ``tree``, through the clause cache."""
        plans: list[tuple[list[int], float, float]] = []
        for index, clause in enumerate(interned.clauses):
            entry = self.clause_lookup(clause.key)
            if entry is None:
                entry = self.clause_publish(
                    clause.key, and_block_local_plan(tree, index)
                )
            order, cost, prob = entry
            plans.append(([tree.gindex(index, j) for j in order], cost, prob))
        return plans

    def clause_lookup(self, clause_key: str) -> ClausePlan | None:
        """Clause plan for ``clause_key``; counts a hit and refreshes recency.

        A miss is not counted here — it belongs to the insert (see
        :meth:`clause_publish`), mirroring the whole-tree race semantics.
        Public because it is half of the clause tier's read-through protocol:
        process-mode workers forward it over the command channel so clause
        plans, like whole-tree plans, are computed once per *cluster*.
        """
        with self._lock:
            entry = self._clause_plans.get(clause_key)
            if entry is not None:
                self.clause_hits += 1
                self._clause_plans.move_to_end(clause_key)
            return entry

    def clause_publish(self, clause_key: str, entry: ClausePlan) -> ClausePlan:
        """Insert a freshly computed clause plan; existing entry wins races."""
        with self._lock:
            existing = self._clause_plans.get(clause_key)
            if existing is not None:
                self.clause_hits += 1
                self._clause_plans.move_to_end(clause_key)
                return existing
            self.clause_misses += 1
            self._clause_plans[clause_key] = entry
            while len(self._clause_plans) > self.clause_capacity:
                self._clause_plans.popitem(last=False)
            return entry

    def _insert_locked(self, cache_key: tuple[str, str], plan: CachedPlan) -> None:
        """Insert + evict under the caller's lock, keeping the key index true."""
        self._plans[cache_key] = plan
        self._by_key.setdefault(cache_key[0], set()).add(cache_key[1])
        while len(self._plans) > self.capacity:
            (evicted_key, evicted_name), _ = self._plans.popitem(last=False)
            self._discard_index(evicted_key, evicted_name)
            self.evictions += 1

    def _discard_index(self, key: str, scheduler_name: str) -> None:
        names = self._by_key.get(key)
        if names is not None:
            names.discard(scheduler_name)
            if not names:
                del self._by_key[key]

    def lookup(self, key: str, scheduler_name: str) -> CachedPlan | None:
        """Counted read half of the read-through protocol.

        Unlike :meth:`get` this *does* count a hit, because a remote worker
        that calls ``lookup`` and finds a plan will not follow up with
        :meth:`publish` — the pair (``lookup`` hit) or (``lookup`` miss +
        ``publish`` insert) mirrors exactly what one :meth:`plan` call would
        have recorded. A lookup miss is deliberately *not* counted here: the
        miss belongs to the insert (see :meth:`plan`'s race note), so two
        workers racing on the same key settle as one miss and one hit.
        """
        with self._lock:
            plan = self._plans.get((key, scheduler_name))
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end((key, scheduler_name))
            return plan

    def publish(self, plan: CachedPlan) -> tuple[CachedPlan, bool]:
        """Counted write half of the read-through protocol.

        Inserts ``plan`` computed elsewhere (a worker process) and returns
        ``(winner, inserted)``: on a racing insert of the same key the
        existing entry wins and the caller is served a hit, identical to the
        in-process :meth:`plan` race semantics.
        """
        cache_key = (plan.key, plan.scheduler_name)
        with self._lock:
            existing = self._plans.get(cache_key)
            if existing is not None:
                self.hits += 1
                self._plans.move_to_end(cache_key)
                return existing, False
            self.misses += 1
            self._insert_locked(cache_key, plan)
            return plan, True

    def invalidate(self, key: str) -> int:
        """Drop every cached plan for canonical tree ``key``; returns count dropped.

        O(schedulers cached for ``key``) via the per-key index — independent
        of cache size, so replan storms on a large cache cannot stall
        concurrent admissions on the shared lock. Clause plans are *not*
        dropped: they are pure structure (order/cost/prob of the clause
        itself), never belief-dependent, so no replan can make them stale.
        """
        with self._lock:
            names = self._by_key.pop(key, None)
            if not names:
                return 0
            for scheduler_name in names:
                del self._plans[(key, scheduler_name)]
            return len(names)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._by_key.clear()
            self._clause_plans.clear()

    def stats(self) -> dict[str, float]:
        """Counter snapshot for metrics export (one consistent view)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            clause_hits, clause_misses = self.clause_hits, self.clause_misses
            total = hits + misses
            clause_total = clause_hits + clause_misses
            return {
                "size": float(len(self._plans)),
                "capacity": float(self.capacity),
                "hits": float(hits),
                "misses": float(misses),
                "evictions": float(self.evictions),
                "hit_rate": hits / total if total else 0.0,
                "clause_size": float(len(self._clause_plans)),
                "clause_capacity": float(self.clause_capacity),
                "clause_hits": float(clause_hits),
                "clause_misses": float(clause_misses),
                "subtree_hit_rate": clause_hits / clause_total if clause_total else 0.0,
            }
