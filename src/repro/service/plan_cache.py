"""LRU plan cache: pay the scheduling cost once per canonical query.

Scheduling is the expensive part of admitting a query (the dynamic
AND-ordered heuristics re-evaluate Proposition 2 prefixes; the exhaustive
optimum is exponential). In a population of millions of users the same query
shapes recur constantly, so the serving layer caches *canonical* schedules:
the key is ``(canonical tree key, scheduler name)`` and the value is the
schedule of the canonical tree, which :meth:`~repro.service.canonical.CanonicalForm.expand_schedule`
translates to each registered original.

The cache is a plain ``OrderedDict`` LRU guarded by a lock — safe to share
between a server and background admission threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.heuristics.base import Scheduler
from repro.core.schedule import Schedule
from repro.errors import ReproError
from repro.service.canonical import CanonicalForm

__all__ = ["CachedPlan", "PlanCache"]


@dataclass(frozen=True)
class CachedPlan:
    """A scheduling decision for one canonical tree."""

    key: str
    scheduler_name: str
    schedule: Schedule
    cost: float


class PlanCache:
    """Bounded LRU cache of canonical schedules.

    Parameters
    ----------
    capacity:
        Maximum number of cached plans; the least-recently-used entry is
        evicted on overflow.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ReproError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._plans: OrderedDict[tuple[str, str], CachedPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __getstate__(self) -> dict:
        # Drop the lock (process-local) so a cache snapshot can cross a
        # process boundary; counters and the LRU order pickle as-is.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: tuple[str, str]) -> bool:
        with self._lock:
            return key in self._plans

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried).

        The ``hits``/``misses`` pair is snapshotted under the lock so a
        concurrent admission cannot be observed between the two reads.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    def get(self, key: str, scheduler_name: str) -> CachedPlan | None:
        """Plan for ``(key, scheduler_name)``, refreshing its recency; None on miss.

        Pure lookup: adjusts recency but not the hit/miss counters, which
        belong to :meth:`plan`.
        """
        with self._lock:
            plan = self._plans.get((key, scheduler_name))
            if plan is not None:
                self._plans.move_to_end((key, scheduler_name))
            return plan

    def plan(self, form: CanonicalForm, scheduler: Scheduler) -> CachedPlan:
        """Schedule ``form.tree`` with ``scheduler``, through the cache.

        The returned plan's schedule addresses the *canonical* tree; callers
        expand it per registered query.
        """
        cache_key = (form.key, scheduler.name)
        with self._lock:
            plan = self._plans.get(cache_key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(cache_key)
                return plan
        # Schedule outside the lock: heuristics can be slow and the result is
        # deterministic, so a racing duplicate computation is harmless. The
        # miss is counted at insert time so two racing admissions of the same
        # key settle as exactly one miss (the insert winner) and one hit (the
        # loser, which is served the winner's entry), keeping the counters
        # consistent with the cache's observable behaviour.
        schedule = scheduler.schedule(form.tree)
        from repro.core.cost import dnf_schedule_cost

        plan = CachedPlan(
            key=form.key,
            scheduler_name=scheduler.name,
            schedule=tuple(schedule),
            cost=dnf_schedule_cost(form.tree, schedule, validate=True),
        )
        with self._lock:
            existing = self._plans.get(cache_key)
            if existing is not None:
                self.hits += 1
                self._plans.move_to_end(cache_key)
                return existing
            self.misses += 1
            self._plans[cache_key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def lookup(self, key: str, scheduler_name: str) -> CachedPlan | None:
        """Counted read half of the read-through protocol.

        Unlike :meth:`get` this *does* count a hit, because a remote worker
        that calls ``lookup`` and finds a plan will not follow up with
        :meth:`publish` — the pair (``lookup`` hit) or (``lookup`` miss +
        ``publish`` insert) mirrors exactly what one :meth:`plan` call would
        have recorded. A lookup miss is deliberately *not* counted here: the
        miss belongs to the insert (see :meth:`plan`'s race note), so two
        workers racing on the same key settle as one miss and one hit.
        """
        with self._lock:
            plan = self._plans.get((key, scheduler_name))
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end((key, scheduler_name))
            return plan

    def publish(self, plan: CachedPlan) -> tuple[CachedPlan, bool]:
        """Counted write half of the read-through protocol.

        Inserts ``plan`` computed elsewhere (a worker process) and returns
        ``(winner, inserted)``: on a racing insert of the same key the
        existing entry wins and the caller is served a hit, identical to the
        in-process :meth:`plan` race semantics.
        """
        cache_key = (plan.key, plan.scheduler_name)
        with self._lock:
            existing = self._plans.get(cache_key)
            if existing is not None:
                self.hits += 1
                self._plans.move_to_end(cache_key)
                return existing, False
            self.misses += 1
            self._plans[cache_key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
            return plan, True

    def invalidate(self, key: str) -> int:
        """Drop every cached plan for canonical tree ``key``; returns count dropped."""
        with self._lock:
            stale = [k for k in self._plans if k[0] == key]
            for k in stale:
                del self._plans[k]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def stats(self) -> dict[str, float]:
        """Counter snapshot for metrics export (one consistent view)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            total = hits + misses
            return {
                "size": float(len(self._plans)),
                "capacity": float(self.capacity),
                "hits": float(hits),
                "misses": float(misses),
                "evictions": float(self.evictions),
                "hit_rate": hits / total if total else 0.0,
            }
