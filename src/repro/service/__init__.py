"""Shared multi-query serving layer.

The paper optimizes one tree at a time; a serving device (or fleet) runs
*populations* of queries over the same streams. This package turns the
single-query machinery into a multi-tenant server:

* :mod:`~repro.service.canonical` — canonical query identities (isomorphic
  trees hash equal, duplicate leaves fold away);
* :mod:`~repro.service.substore` — the hash-consed canonical node store:
  leaves, AND clauses and whole trees interned once per process, so
  isomorphism is pointer equality and *partial* overlaps (a shared clause,
  a shared leaf) earn sharing too;
* :mod:`~repro.service.plan_cache` — LRU cache of canonical schedules (plus
  an interned-clause plan tier), so a query shape pays its scheduling cost
  once across the whole population and a *new* shape reuses the clauses it
  shares with old ones;
* :mod:`~repro.service.shared_plan` — one global probe order merged from all
  per-query schedules by marginal cost-effectiveness, executed with
  per-query early termination;
* :mod:`~repro.service.server` — the :class:`QueryServer`
  (register/deregister/step/run_batch) plus the :func:`run_isolated`
  no-sharing baseline;
* :mod:`~repro.service.metrics` — per-query and aggregate counters (cost,
  probes saved by sharing, plan-cache hit rate, p50/p95/p99 round cost,
  routed through the :mod:`repro.obs` histogram buckets);
* :mod:`~repro.service.simulate` — synthetic template-based populations for
  demos and benchmarks.
"""

from repro.service.canonical import (
    CanonicalForm,
    canonical_key,
    canonicalize,
    quantize_prob,
)
from repro.service.metrics import (
    ROUND_COST_WINDOW,
    QueryStats,
    ServiceMetrics,
    percentile,
)
from repro.service.plan_cache import CachedPlan, PlanCache
from repro.service.server import (
    BatchReport,
    QueryServer,
    RegisteredQuery,
    run_isolated,
)
from repro.service.shared_plan import (
    Probe,
    RoundStats,
    SharedPlan,
    execute_round,
    merge_schedules,
)
from repro.service.simulate import (
    shuffled_isomorph,
    synthetic_population,
    synthetic_registry,
)
from repro.service.substore import (
    InternedClause,
    InternedLeaf,
    InternedTree,
    SubtreeStore,
    default_store,
)

__all__ = [
    "CanonicalForm",
    "canonicalize",
    "canonical_key",
    "quantize_prob",
    "InternedLeaf",
    "InternedClause",
    "InternedTree",
    "SubtreeStore",
    "default_store",
    "PlanCache",
    "CachedPlan",
    "Probe",
    "SharedPlan",
    "RoundStats",
    "merge_schedules",
    "execute_round",
    "QueryServer",
    "RegisteredQuery",
    "BatchReport",
    "run_isolated",
    "ServiceMetrics",
    "QueryStats",
    "percentile",
    "ROUND_COST_WINDOW",
    "shuffled_isomorph",
    "synthetic_population",
    "synthetic_registry",
]
