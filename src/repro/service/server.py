"""The multi-tenant query server.

:class:`QueryServer` is the serving layer's front door: queries register and
deregister at runtime, and each :meth:`~QueryServer.step` advances the shared
streams one tick and evaluates the whole registered population as one
optimized unit:

* admission canonicalizes the tree (:mod:`repro.service.canonical`) and gets
  its schedule through the shared :class:`~repro.service.plan_cache.PlanCache`
  — isomorphic queries pay the scheduling cost once;
* per-round execution runs the population's
  :class:`~repro.service.shared_plan.SharedPlan` against one
  :class:`~repro.streams.cache.DataItemCache`, so stream windows are paid
  once per round no matter how many queries need them;
* :func:`run_isolated` re-runs the same population with private caches and
  plans, quantifying exactly what sharing bought.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, replace as dataclass_replace
from typing import Callable, Mapping, Sequence, Union

from repro.adaptive.controller import AdaptiveController, ShapeBelief, fold_base_probs
from repro.adaptive.policy import AdaptivePolicy, ReplanEvent
from repro.core.cost import dnf_schedule_cost
from repro.core.heuristics.base import Scheduler, get_scheduler
from repro.core.resolution import TreeIndex
from repro.core.schedule import Schedule, validate_schedule
from repro.core.tree import AndTree, DnfTree, QueryTree
import numpy as np

from repro.engine.executor import (
    BernoulliOracle,
    DriftingBernoulliOracle,
    ExecutionResult,
    LeafOracle,
    PrecomputedOracle,
    ScheduleExecutor,
)
from repro.engine.vectorized import BatchResult, VectorizedExecutor
from repro.engine.workload import compute_max_windows
from repro.errors import AdmissionError, StreamError
from repro.obs import Counter, Histogram, MetricsRegistry, Telemetry
from repro.service.canonical import CanonicalForm, _as_dnf, canonicalize, quantize_prob
from repro.service.metrics import QueryStats, ServiceMetrics
from repro.service.plan_cache import CachedPlan, PlanCache
from repro.service.substore import SubtreeStore, default_store
from repro.service.shared_plan import (
    Probe,
    RoundStats,
    SharedPlan,
    execute_round,
    merge_schedules,
)
from repro.streams.registry import StreamRegistry

__all__ = [
    "RegisteredQuery",
    "QuerySnapshot",
    "BatchReport",
    "QueryServer",
    "run_isolated",
]

TreeLike = Union[AndTree, DnfTree, QueryTree]

#: Default admission scheduler: the paper's best polynomial heuristic.
DEFAULT_SCHEDULER = "and-inc-c-over-p-dynamic"


def _synchronized(method):
    """Run ``method`` under the server's reentrant lock."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


@dataclass(frozen=True)
class RegisteredQuery:
    """One admitted query with its canonical identity and expanded plan.

    ``tree`` keeps the *admission* leaf probabilities (for a Bernoulli
    oracle they double as the simulated ground truth); ``planning_tree``,
    when set by an adaptive re-plan, carries the server's current belief and
    is what cross-query plan merging weighs probes by.
    """

    name: str
    tree: DnfTree
    canonical: CanonicalForm
    plan: CachedPlan
    schedule: Schedule
    index: TreeIndex
    oracle: LeafOracle
    planning_tree: DnfTree | None = None

    @property
    def belief_tree(self) -> DnfTree:
        """The tree whose probabilities the current plan was computed with."""
        return self.planning_tree if self.planning_tree is not None else self.tree


@dataclass(frozen=True)
class QuerySnapshot:
    """One registered query lifted out of a server for transplant.

    Produced by :meth:`QueryServer.export_query`, consumed by
    :meth:`QueryServer.admit_migrated`. Carries everything a placement move
    must preserve for the destination to serve the query exactly as the
    source would have: the full :class:`RegisteredQuery` (tree, expanded
    schedule, cached plan, belief tree and — critically — the *same* oracle
    instance, so outcome streams continue seamlessly), the query's lifetime
    :class:`~repro.service.metrics.QueryStats` (accounting is conserved
    across moves, not double-counted or lost) and, when the source was
    adaptive, its canonical shape's :class:`~repro.adaptive.ShapeBelief`.
    """

    query: RegisteredQuery
    stats: QueryStats | None
    belief: ShapeBelief | None


@dataclass
class BatchReport:
    """Outcome of :meth:`QueryServer.run_batch`."""

    rounds: int
    total_cost: float
    per_query_cost: dict[str, float]
    per_query_true_rate: dict[str, float]
    round_costs: list[float]
    probes: int
    free_probes: int
    items_fetched: int
    items_saved: int
    plan_cache_hit_rate: float
    replans: int = 0

    @property
    def mean_round_cost(self) -> float:
        return self.total_cost / self.rounds if self.rounds else 0.0

    def summary(self) -> str:
        lines = [
            f"batch: {self.rounds} rounds, total {self.total_cost:.6g}"
            f" ({self.mean_round_cost:.6g}/round)",
            f"  probes {self.probes} ({self.free_probes} free),"
            f" items {self.items_fetched} fetched / {self.items_saved} saved,"
            f" plan-cache hit rate {self.plan_cache_hit_rate:.1%},"
            f" {self.replans} replans",
        ]
        for name in sorted(self.per_query_cost):
            lines.append(
                f"  {name}: {self.per_query_cost[name] / max(1, self.rounds):.6g}/round,"
                f" TRUE rate {self.per_query_true_rate[name]:.3f}"
            )
        return "\n".join(lines)


class QueryServer:
    """Multi-tenant continuous-query server over one shared stream cache.

    The server is thread-safe: ``register``/``deregister``/``step``/
    ``run_batch`` (and the re-plan entry points) serialize on one internal
    reentrant lock, so background admission threads can add and remove
    queries while another thread drives rounds. A batch holds the lock for
    its whole duration — admissions land between batches, never mid-batch.

    Parameters
    ----------
    registry:
        The sensing environment (streams, costs, sources).
    oracle:
        Default leaf oracle for queries registered without their own
        (``None`` -> a fresh :class:`BernoulliOracle`).
    scheduler:
        Default admission scheduler — a registry name or a
        :class:`Scheduler` instance.
    plan_cache:
        A :class:`PlanCache`, a capacity for a new one, or ``None``/``0`` to
        disable plan caching (every admission schedules from scratch).
    shared_plan:
        When True (default), rounds execute the population's merged
        cost-effectiveness probe order; when False, queries run one after the
        other in registration order, rotated per round (still sharing the
        cache — the :class:`~repro.engine.workload.QueryWorkload` baseline).
    max_queries:
        Admission limit; further :meth:`register` calls raise
        :class:`~repro.errors.AdmissionError`.
    warmup:
        Initial device time of the shared cache (grown automatically when a
        registered query needs a larger window).
    substore:
        The hash-consed canonical node store
        (:class:`~repro.service.substore.SubtreeStore`). ``True`` (default)
        joins the process-wide :func:`~repro.service.substore.default_store`;
        pass a store instance to share one explicitly, or ``False``/``None``
        to disable interning (plain :func:`canonicalize` per admission, no
        clause-level plan sharing).
    adaptive:
        An :class:`~repro.adaptive.AdaptivePolicy` (or a prebuilt
        :class:`~repro.adaptive.AdaptiveController`) enabling online
        selectivity tracking and drift-triggered re-planning; ``None``
        (default) serves every query on its admission-time plan forever.
    telemetry:
        A :class:`~repro.obs.Telemetry` receiving per-round latency/cost
        histograms, probe counters, batch spans and replan/migration events.
        ``None`` (default) costs one pointer comparison per round; a
        disabled telemetry costs the same (the hot paths never time or
        record unless ``telemetry.enabled``).
    """

    def __init__(
        self,
        registry: StreamRegistry,
        oracle: LeafOracle | None = None,
        *,
        scheduler: str | Scheduler = DEFAULT_SCHEDULER,
        plan_cache: PlanCache | int | None = 256,
        substore: SubtreeStore | bool | None = True,
        shared_plan: bool = True,
        max_queries: int | None = None,
        warmup: int = 64,
        adaptive: AdaptivePolicy | AdaptiveController | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.registry = registry
        self.default_oracle = oracle if oracle is not None else BernoulliOracle()
        self.scheduler = (
            get_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        if isinstance(plan_cache, PlanCache):
            self.plan_cache: PlanCache | None = plan_cache
        elif plan_cache:
            self.plan_cache = PlanCache(capacity=int(plan_cache))
        else:
            self.plan_cache = None
        # The hash-consed canonical node store: admission-time canonicalize
        # memo, interned sub-tree identity for the clause-level plan cache,
        # and shared-leaf belief keys. True (default) joins the process-wide
        # store so co-located servers (cluster shards) share identities.
        if isinstance(substore, SubtreeStore):
            self.substore: SubtreeStore | None = substore
        elif substore:
            self.substore = default_store()
        else:
            self.substore = None
        self.shared_plan_enabled = shared_plan
        if max_queries is not None and max_queries < 1:
            raise AdmissionError(f"max_queries must be >= 1, got {max_queries}")
        self.max_queries = max_queries
        self.cache = registry.build_cache(now=warmup)
        self.metrics = ServiceMetrics()
        if isinstance(adaptive, AdaptiveController):
            self.adaptive: AdaptiveController | None = adaptive
        elif isinstance(adaptive, AdaptivePolicy):
            self.adaptive = AdaptiveController(adaptive)
        elif adaptive is None:
            self.adaptive = None
        else:
            raise AdmissionError(
                f"adaptive must be an AdaptivePolicy, AdaptiveController or None, "
                f"got {type(adaptive).__name__}"
            )
        self.replan_log: list[ReplanEvent] = []
        self.telemetry = telemetry
        # Cumulative busy-seconds per execution phase, maintained by the
        # round loops only while telemetry is enabled. run_batch snapshots
        # before/after deltas onto the batch span (``phase_seconds``), which
        # is what repro.obs.analyze buckets wall time with — paired
        # perf_counter reads per round are cheap enough to survive
        # microsecond vectorized rounds where per-round spans would not be.
        self._phase_seconds = {"acquisition": 0.0, "evaluation": 0.0, "telemetry": 0.0}
        # Memoized metric cell references for _record_round_telemetry, keyed
        # on registry identity: worker shards swap in a fresh registry after
        # shipping each delta, which must invalidate the cache (``is`` check
        # per round), while within one registry epoch the per-round name/label
        # lookups collapse to attribute loads and one dict.get per query.
        self._metric_cells: (
            tuple[MetricsRegistry, tuple[Counter, ...], tuple[Histogram, ...], dict[str, Histogram]]
            | None
        ) = None
        self._queries: dict[str, RegisteredQuery] = {}
        self._max_windows: dict[str, int] = {}
        self._plan: SharedPlan | None = None
        self._vector_executors: dict[str, VectorizedExecutor] = {}
        self._round = 0
        # One reentrant lock serializes every population mutation and every
        # round against each other, so background admission threads can
        # register/deregister while another thread steps or batches.
        # Reentrant because run_batch -> step -> replan_canonical nest.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        # RPR001: explicit pickle contract. A server is process-local by
        # design (live RLock, per-query oracle state, vectorized executor
        # caches); cross-process migration goes through export_query() /
        # QuerySnapshot, which pickles cleanly. Fail at pickle time with
        # the right pointer instead of at pipe-send time with a lock error.
        raise TypeError(
            "QueryServer is process-local (live RLock and executor state); "
            "migrate queries with export_query()/admit_migrated() instead "
            "of pickling the server"
        )

    # -- population management -----------------------------------------

    @property
    def rounds_served(self) -> int:
        """Rounds this server has executed (its logical clock)."""
        return self._round

    @_synchronized
    def sync_round_clock(self, round_index: int) -> None:
        """Fast-forward this server's round clock to a sibling's.

        Shard migration support: a freshly spawned (or long-idle) shard
        adopting queries from an older one must agree with it on what round
        it is, or transplanted re-plan cooldowns and blocked-rotation phases
        lose their meaning. The clock only moves forward.
        """
        if round_index < self._round:
            raise StreamError(
                f"cannot rewind the round clock from {self._round} to {round_index}"
            )
        self._round = round_index

    @property
    def registered(self) -> tuple[str, ...]:
        """Names of the admitted queries, in registration order."""
        return tuple(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, name: str) -> bool:
        return name in self._queries

    def query(self, name: str) -> RegisteredQuery:
        try:
            return self._queries[name]
        except KeyError:
            raise AdmissionError(f"no query named {name!r} is registered") from None

    def _leaf_identities(
        self, form: CanonicalForm, admission_base: tuple[float, ...]
    ) -> tuple[object, ...] | None:
        """Pool identities for ``form``'s canonical leaves, or None when off.

        Belief pooling (``AdaptivePolicy.share_leaf_beliefs``) keys shared
        selectivity posteriors by *per-copy* leaf identity — ``(stream,
        items, per-copy base prob)``, interned in the store so the key is
        one pointer. The per-copy prob matters: a canonical leaf's own prob
        is the folded product ``p**k``, which is ambiguous across fold
        sizes, while observations are recorded per copy.
        """
        if self.adaptive is None or not self.adaptive.policy.share_leaf_beliefs:
            return None
        ids: list[object] = []
        for g, leaf in enumerate(form.tree.leaves):
            base = quantize_prob(admission_base[g])
            if self.substore is not None:
                ids.append(self.substore.leaf(leaf.stream, leaf.items, base))
            else:
                ids.append((leaf.stream, leaf.items, base))
        return tuple(ids)

    @_synchronized
    def register(
        self,
        name: str,
        tree: TreeLike,
        *,
        oracle: LeafOracle | None = None,
        scheduler: str | Scheduler | None = None,
        replace: bool = False,
    ) -> RegisteredQuery:
        """Admit a query: canonicalize, plan (through the cache), index.

        ``replace=True`` cleanly swaps an existing registration of ``name``
        (its compiled vectorized executor and shared-plan slot are dropped,
        never reused for the new tree); the default rejects duplicates.

        Raises :class:`~repro.errors.AdmissionError` on a duplicate name or a
        full server, :class:`~repro.errors.StreamError` when the tree uses an
        unregistered stream.
        """
        if name in self._queries:
            if not replace:
                raise AdmissionError(f"query {name!r} is already registered")
            self.deregister(name)
        if self.max_queries is not None and len(self._queries) >= self.max_queries:
            raise AdmissionError(
                f"server is full ({self.max_queries} queries); deregister one first"
            )
        self.registry.validate_tree_streams(tuple(tree.streams))
        # Through the store when enabled: a bounded structural memo makes
        # re-admission of an already-seen tree skip canonicalization, and the
        # returned form carries interned sub-tree identity for clause-level
        # plan sharing.
        form = (
            self.substore.canonicalize(tree)
            if self.substore is not None
            else canonicalize(tree)
        )
        chosen = self.scheduler
        if scheduler is not None:
            chosen = get_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        dnf = _as_dnf(tree)
        planning_tree: DnfTree | None = None
        # Plan against the server's current belief for this shape (the
        # rebased baseline after a re-plan) *before* touching the plan cache,
        # so a stale admission-probability plan is neither recomputed nor
        # re-inserted into the cache entry replan_canonical invalidated.
        baseline: tuple[float, ...] | None = None
        if self.adaptive is not None:
            admission_base = tuple(
                dnf.leaves[group[0]].prob for group in form.leaf_map
            )
            if form.key in self.adaptive.tracked_keys():
                tracked = self.adaptive.baseline(form.key)
                if tracked != admission_base:
                    baseline = tracked
            else:
                self.adaptive.admit(
                    form.key,
                    admission_base,
                    form.fold_sizes,
                    leaf_ids=self._leaf_identities(form, admission_base),
                )
        if baseline is not None:
            plan = self._plan_with_base_probs(form, chosen, baseline)
            planning_tree = form.reprobed_original(dnf, baseline)
        else:
            plan = self._plan_canonical(form, chosen)
        # The cached schedule addresses the canonical tree; expand it back to
        # this query's own leaf indices.
        expanded = form.expand_schedule(plan.schedule)
        # A stale compiled executor for this name must never serve a new tree.
        self._vector_executors.pop(name, None)
        registered = RegisteredQuery(
            name=name,
            tree=dnf,
            canonical=form,
            plan=plan,
            schedule=validate_schedule(dnf, expanded),
            index=TreeIndex(dnf),
            oracle=oracle if oracle is not None else self.default_oracle,
            planning_tree=planning_tree,
        )
        self._queries[name] = registered
        self._after_population_change()
        self.metrics.registrations += 1
        # Grow device time so the new query's windows are immediately servable.
        max_items = max(leaf.items for leaf in registered.tree.leaves)
        if max_items > self.cache.now:
            self.cache.advance(max_items - self.cache.now)
        return registered

    @_synchronized
    def deregister(self, name: str) -> None:
        """Remove a query; its per-query metrics are retained."""
        if name not in self._queries:
            raise AdmissionError(f"no query named {name!r} is registered")
        removed = self._queries.pop(name)
        self._after_population_change()
        self.metrics.deregistrations += 1
        if self.adaptive is not None:
            key = removed.canonical.key
            if not any(q.canonical.key == key for q in self._queries.values()):
                self.adaptive.retire(key)

    @_synchronized
    def export_query(self, name: str) -> QuerySnapshot:
        """Lift ``name`` out of this server for transplant into another.

        Unlike :meth:`deregister`, an export is a *placement* change, not
        churn: the query's lifetime stats leave with it (so cluster-wide
        accounting is conserved), its canonical shape's adaptive belief is
        snapshotted before the shape is retired, and the churn counters are
        untouched (``migrations_out`` is incremented instead). The returned
        snapshot re-enters a server through :meth:`admit_migrated` with the
        exact plan, schedule and oracle state it left with.
        """
        query = self.query(name)
        belief = (
            self.adaptive.export_shape(query.canonical.key)
            if self.adaptive is not None
            else None
        )
        stats = self.metrics.per_query.pop(name, None)
        del self._queries[name]
        self._after_population_change()
        self.metrics.migrations_out += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.registry.counter("repro_migrations_total", direction="out").inc()
            tel.event("migration-out", query=name, round=self._round)
        if self.adaptive is not None:
            key = query.canonical.key
            if not any(q.canonical.key == key for q in self._queries.values()):
                self.adaptive.retire(key)
        return QuerySnapshot(query=query, stats=stats, belief=belief)

    @_synchronized
    def admit_migrated(self, snapshot: QuerySnapshot) -> RegisteredQuery:
        """Install a migrated query verbatim — no re-canonicalization, no
        re-planning, no plan-cache traffic.

        The snapshot's schedule was computed by the same deterministic
        scheduler this cluster's servers share, so re-deriving it could only
        reproduce it (placement must never change what a query costs) —
        installing it directly also leaves the (possibly cluster-shared)
        plan cache entries exactly as they were. The shape's adaptive belief
        transplants with it when this server is adaptive and does not
        already track the shape.
        """
        query = snapshot.query
        if query.name in self._queries:
            raise AdmissionError(f"query {query.name!r} is already registered")
        if self.max_queries is not None and len(self._queries) >= self.max_queries:
            raise AdmissionError(
                f"server is full ({self.max_queries} queries); cannot adopt "
                f"migrated query {query.name!r}"
            )
        self.registry.validate_tree_streams(tuple(query.tree.streams))
        if self.adaptive is not None and snapshot.belief is not None:
            self.adaptive.import_shape(query.canonical.key, snapshot.belief)
        # A stale compiled executor for this name must never serve a new tree.
        self._vector_executors.pop(query.name, None)
        self._queries[query.name] = query
        self._after_population_change()
        self.metrics.migrations_in += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.registry.counter("repro_migrations_total", direction="in").inc()
            tel.event("migration-in", query=query.name, round=self._round)
        if snapshot.stats is not None:
            self.metrics.per_query[query.name] = snapshot.stats
        max_items = max(leaf.items for leaf in query.tree.leaves)
        if max_items > self.cache.now:
            self.cache.advance(max_items - self.cache.now)
        return query

    @_synchronized
    def reorder(self, names: Sequence[str]) -> None:
        """Re-key the registration order to ``names`` (a permutation).

        Registration order is load-bearing: it is the tie-break order of the
        shared-plan merge and the rotation base of the blocked round-robin.
        After a migration lands mid-population, the cluster restores its
        global admission order here so a query's merge position — and
        therefore its cost — is independent of how it travelled.
        """
        if sorted(names) != sorted(self._queries):
            raise AdmissionError(
                f"reorder must permute the registered names; got {sorted(names)!r} "
                f"vs {sorted(self._queries)!r}"
            )
        self._queries = {name: self._queries[name] for name in names}
        self._plan = None  # merge order changed; rebuild lazily

    def _after_population_change(self) -> None:
        old_windows = self._max_windows
        self._max_windows = compute_max_windows(
            [query.tree for query in self._queries.values()]
        )
        # Relevance rule: items outside the (possibly shrunken) windows of
        # the *current* population are no longer held (paper §I) — departed
        # queries leave no placement-dependent residual warmth behind. Pure
        # growth (every old horizon still covered) cannot evict anything, so
        # admissions skip the cache scan.
        shrank = any(
            self._max_windows.get(stream, 0) < window
            for stream, window in old_windows.items()
        )
        if shrank:
            self.cache.retain_relevant(self._max_windows)
        self._plan = None  # rebuilt lazily on the next step
        self._vector_executors = {
            name: executor
            for name, executor in self._vector_executors.items()
            if name in self._queries
        }

    def _plan_canonical(self, form: CanonicalForm, scheduler: Scheduler) -> CachedPlan:
        if self.plan_cache is not None:
            plan = self.plan_cache.plan(form, scheduler)
        else:
            schedule = tuple(scheduler.schedule(form.tree))
            plan = CachedPlan(
                key=form.key,
                scheduler_name=scheduler.name,
                schedule=schedule,
                cost=dnf_schedule_cost(form.tree, schedule, validate=True),
            )
        return plan

    def _plan_with_base_probs(
        self, form: CanonicalForm, scheduler: Scheduler, base_probs: Sequence[float]
    ) -> CachedPlan:
        """Schedule ``form``'s canonical tree under updated per-copy probabilities.

        Bypasses the plan cache on purpose: the cache is keyed by admission
        identity, and belief-updated plans are maintained per server.
        """
        belief = form.reprobed_tree(fold_base_probs(base_probs, form.fold_sizes))
        schedule = tuple(scheduler.schedule(belief))
        return CachedPlan(
            key=form.key,
            scheduler_name=scheduler.name,
            schedule=schedule,
            cost=dnf_schedule_cost(belief, schedule, validate=True),
        )

    def _scheduler_by_name(self, name: str) -> Scheduler:
        if name == self.scheduler.name:
            return self.scheduler
        return get_scheduler(name)

    # -- execution ------------------------------------------------------

    @_synchronized
    def shared_plan(self) -> SharedPlan:
        """The current population's global probe order (built lazily)."""
        if not self._queries:
            raise StreamError("no queries registered")
        if self._plan is None:
            self._plan = merge_schedules(
                # Merge by the *belief* trees: after an adaptive re-plan the
                # cost-effectiveness weights use the updated probabilities.
                {name: query.belief_tree for name, query in self._queries.items()},
                {name: query.schedule for name, query in self._queries.items()},
                self.registry.cost_table(),
            )
        return self._plan

    def _blocked_probes(self) -> SharedPlan:
        """Round-robin blocked order: each query's schedule back-to-back."""
        names = list(self._queries)
        shift = self._round % len(names)
        probes: list[Probe] = []
        for name in names[shift:] + names[:shift]:
            probes.extend(Probe(name, g) for g in self._queries[name].schedule)
        return SharedPlan(probes=tuple(probes), planned_items=dict(self._max_windows))

    # -- adaptive re-planning -------------------------------------------

    @_synchronized
    def replan_canonical(
        self,
        key: str,
        base_probs: Sequence[float],
        *,
        drifted: Sequence[int] = (),
        reason: str = "forced",
    ) -> list[ReplanEvent]:
        """Re-plan every registered query of canonical shape ``key``.

        ``base_probs`` are per-*canonical-leaf* per-copy success
        probabilities (folded duplicates receive ``p**k`` automatically).
        The stale :class:`PlanCache` entries for ``key`` are invalidated, the
        shape is re-scheduled per admission scheduler, every isomorph's
        expanded schedule is rebuilt and the merged shared plan is marked for
        rebuild. Returns one :class:`~repro.adaptive.ReplanEvent` per
        distinct admission scheduler among the shape's queries.
        """
        members = [q for q in self._queries.values() if q.canonical.key == key]
        if not members:
            raise AdmissionError(f"no registered query has canonical key {key!r}")
        form = members[0].canonical
        base_probs = tuple(float(p) for p in base_probs)
        if len(base_probs) != len(form.leaf_map):
            raise AdmissionError(
                f"canonical shape {key!r} has {len(form.leaf_map)} leaves, "
                f"got {len(base_probs)} probabilities"
            )
        old_base = (
            self.adaptive.baseline(key)
            if self.adaptive is not None and key in self.adaptive.tracked_keys()
            else tuple(members[0].tree.leaves[group[0]].prob for group in form.leaf_map)
        )
        folded = fold_base_probs(base_probs, form.fold_sizes)
        belief = form.reprobed_tree(folded)
        by_scheduler: dict[str, list[RegisteredQuery]] = {}
        for query in members:
            by_scheduler.setdefault(query.plan.scheduler_name, []).append(query)
        # Phase 1: schedule every group under the new belief and apply the
        # hysteresis gate. A *fully*-suppressed re-plan touches nothing — in
        # particular it must not drop the (possibly cluster-shared) plan
        # cache entries for schedules that stay in service. When any group
        # does apply, the whole shape's cache entries are invalidated (all
        # schedulers): the shape's belief moved, so its admission-keyed
        # plans are stale even for groups whose swap was suppressed.
        prepared: list[tuple[str, list[RegisteredQuery], Schedule, float, Schedule, float]] = []
        for scheduler_name, group in by_scheduler.items():
            scheduler = self._scheduler_by_name(scheduler_name)
            new_schedule = tuple(scheduler.schedule(belief))
            new_cost = dnf_schedule_cost(belief, new_schedule, validate=True)
            old_schedule = group[0].plan.schedule
            old_cost = dnf_schedule_cost(belief, old_schedule, validate=False)
            if (
                reason == "drift"
                and self.adaptive is not None
                and self.adaptive.policy.min_saving > 0.0
                and old_cost - new_cost < self.adaptive.policy.min_saving
            ):
                # Hysteresis: the drifted belief is still adopted as the new
                # baseline (rebase below, which also starts the cooldown), but
                # a schedule swap expected to save less than min_saving per
                # round is not worth the churn.
                self.metrics.replans_suppressed += 1
                continue
            prepared.append(
                (scheduler_name, group, new_schedule, new_cost, old_schedule, old_cost)
            )
        # Phase 2: apply the surviving groups.
        invalidated = (
            self.plan_cache.invalidate(key)
            if prepared and self.plan_cache is not None
            else 0
        )
        events: list[ReplanEvent] = []
        for scheduler_name, group, new_schedule, new_cost, old_schedule, old_cost in prepared:
            plan = CachedPlan(
                key=key,
                scheduler_name=scheduler_name,
                schedule=new_schedule,
                cost=new_cost,
            )
            for query in group:
                expanded = query.canonical.expand_schedule(new_schedule)
                self._queries[query.name] = dataclass_replace(
                    query,
                    plan=plan,
                    schedule=validate_schedule(query.tree, expanded),
                    planning_tree=query.canonical.reprobed_original(
                        query.tree, base_probs
                    ),
                )
            event = ReplanEvent(
                round_index=self._round,
                canonical_key=key,
                drifted_leaves=tuple(drifted),
                old_probs=old_base,
                new_probs=base_probs,
                old_schedule=old_schedule,
                new_schedule=new_schedule,
                old_cost=old_cost,
                new_cost=new_cost,
                invalidated=invalidated,
                queries=tuple(q.name for q in group),
                reason=reason,
            )
            events.append(event)
            self.replan_log.append(event)
            self.metrics.replans += 1
        tel = self.telemetry
        if tel is not None and tel.enabled:
            for event in events:
                tel.registry.counter("repro_replans_total").inc()
                tel.event(
                    "replan",
                    key=key,
                    reason=reason,
                    round=self._round,
                    queries=len(event.queries),
                    drifted=list(event.drifted_leaves),
                    old_cost=event.old_cost,
                    new_cost=event.new_cost,
                    saving=event.old_cost - event.new_cost,
                )
        if events:
            self._plan = None  # rebuild the merged shared plan lazily
        if self.adaptive is not None:
            self.adaptive.rebase(key, self._round, base_probs)
            for event in events:
                self.adaptive.record_event(event)
        return events

    @_synchronized
    def replan_query(
        self, name: str, true_probs: Mapping[int, float]
    ) -> list[ReplanEvent]:
        """Force a re-plan of ``name``'s shape with known leaf probabilities.

        ``true_probs`` maps *original-tree* global leaf indices to their
        (externally known) success probabilities; omitted leaves keep the
        probability of the current plan. This is the oracle-re-plan hook the
        drift experiments use as an upper baseline — no detection lag, no
        estimation noise.
        """
        query = self.query(name)
        form = query.canonical
        current = (
            self.adaptive.baseline(form.key)
            if self.adaptive is not None and form.key in self.adaptive.tracked_keys()
            else tuple(query.tree.leaves[group[0]].prob for group in form.leaf_map)
        )
        base = list(current)
        origin = form.origin_to_canonical
        for gindex, prob in true_probs.items():
            gindex = int(gindex)
            if not 0 <= gindex < len(origin):
                raise AdmissionError(
                    f"query {name!r} has {len(origin)} leaves; got leaf {gindex}"
                )
            base[origin[gindex]] = float(prob)
        return self.replan_canonical(form.key, base, reason="forced")

    def _observe_outcomes(
        self, query: RegisteredQuery, outcomes: Mapping[int, bool]
    ) -> None:
        """Feed one round's evaluated probe outcomes into the drift tracker."""
        assert self.adaptive is not None
        origin = query.canonical.origin_to_canonical
        key = query.canonical.key
        for gindex, outcome in outcomes.items():
            self.adaptive.observe(key, origin[gindex], outcome)

    def _maybe_replan(self) -> list[ReplanEvent]:
        """Drift check for every tracked shape; re-plans the drifted ones."""
        if self.adaptive is None:
            return []
        events: list[ReplanEvent] = []
        for key in self.adaptive.tracked_keys():
            drifted = self.adaptive.should_replan(key, self._round)
            if drifted:
                events.extend(
                    self.replan_canonical(
                        key,
                        self.adaptive.proposed_base_probs(key),
                        drifted=drifted,
                        reason="drift",
                    )
                )
        return events

    def _advance_drifting_oracles(self, rounds: int) -> None:
        """Tick every drifting oracle's ground-truth clock once per round."""
        seen: set[int] = set()
        for query in self._queries.values():
            oracle = query.oracle
            if isinstance(oracle, DriftingBernoulliOracle) and id(oracle) not in seen:
                seen.add(id(oracle))
                oracle.advance(rounds)

    def _record_round_telemetry(
        self,
        tel: Telemetry,
        stats: RoundStats,
        per_query_cost: Mapping[str, float],
        wall_seconds: float,
    ) -> None:
        """One round's worth of metrics into the registry (enabled path only).

        Recording is per *round*, never per probe: the scalar and vectorized
        loops both call this exactly once after their round accounting, so
        the instrumented hot paths stay allocation-free between rounds.
        """
        reg = tel.registry
        cached = self._metric_cells
        if cached is None or cached[0] is not reg:
            cached = (
                reg,
                (
                    reg.counter("repro_rounds_total"),
                    reg.counter("repro_probes_total"),
                    reg.counter("repro_free_probes_total"),
                    reg.counter("repro_items_fetched_total"),
                    reg.counter("repro_items_saved_total"),
                ),
                (
                    reg.histogram("repro_round_cost"),
                    reg.histogram("repro_round_seconds"),
                ),
                {},
            )
            self._metric_cells = cached
        rounds_c, probes_c, free_c, fetched_c, saved_c = cached[1]
        round_cost_h, round_seconds_h = cached[2]
        rounds_c.inc()
        probes_c.inc(stats.probes)
        free_c.inc(stats.free_probes)
        fetched_c.inc(stats.items_fetched)
        saved_c.inc(stats.items_saved)
        round_cost_h.observe(stats.cost)
        round_seconds_h.observe(wall_seconds)
        query_cells = cached[3]
        for name, cost in per_query_cost.items():
            cell = query_cells.get(name)
            if cell is None:
                cell = query_cells[name] = reg.histogram(
                    "repro_query_round_cost", query=name
                )
            cell.observe(cost)

    @_synchronized
    def step(self) -> dict[str, ExecutionResult]:
        """Advance the streams one tick and evaluate every registered query."""
        if not self._queries:
            raise StreamError("no queries registered")
        tel = self.telemetry
        recording = tel is not None and tel.enabled
        wall_start = time.perf_counter() if recording else 0.0
        self.cache.advance(1, max_windows=self._max_windows)
        # Phase split: advancing the cache acquires the round's new window
        # state; everything through adaptivity below is evaluation (the
        # scalar execute_round interleaves its fetches with short-circuit
        # decisions, so its fetch time is credited to evaluation by design).
        acquired_at = time.perf_counter() if recording else 0.0
        plan = self.shared_plan() if self.shared_plan_enabled else self._blocked_probes()
        results, stats = execute_round(
            plan,
            {name: query.index for name, query in self._queries.items()},
            self.cache,
            {name: query.oracle for name, query in self._queries.items()},
        )
        self._round += 1
        self.metrics.record_round(stats.cost)
        self.metrics.total_probes += stats.probes
        self.metrics.free_probes += stats.free_probes
        self.metrics.items_fetched += stats.items_fetched
        self.metrics.items_saved += stats.items_saved
        if self.plan_cache is not None:
            self.metrics.plan_cache_hit_rate = self.plan_cache.hit_rate
        for name, result in results.items():
            query_stats = self.metrics.query_stats(name)
            query_stats.rounds += 1
            query_stats.cost += result.cost
            query_stats.probes += result.n_evaluated
            query_stats.items_fetched += stats.query_items_fetched.get(name, 0)
            query_stats.items_saved += stats.query_items_saved.get(name, 0)
            if result.value:
                query_stats.true_count += 1
        if self.adaptive is not None:
            for name, result in results.items():
                self._observe_outcomes(self._queries[name], result.outcomes)
            self._maybe_replan()
        self._advance_drifting_oracles(1)
        if recording:
            evaluated_at = time.perf_counter()
            self._record_round_telemetry(
                tel,
                stats,
                {name: result.cost for name, result in results.items()},
                evaluated_at - wall_start,
            )
            if tel.detail:
                for name, result in results.items():
                    tel.event(
                        "query-resolution",
                        query=name,
                        round=self._round,
                        cost=result.cost,
                        value=bool(result.value),
                        probes=result.n_evaluated,
                    )
            phases = self._phase_seconds
            phases["acquisition"] += acquired_at - wall_start
            phases["evaluation"] += evaluated_at - acquired_at
            phases["telemetry"] += time.perf_counter() - evaluated_at
        return results

    @_synchronized
    def run_batch(self, rounds: int, *, engine: str = "scalar") -> BatchReport:
        """Run ``rounds`` consecutive steps and aggregate the outcome.

        ``engine="vectorized"`` precomputes every query's per-round outcome
        matrix and short-circuit resolution in bulk through
        :class:`~repro.engine.vectorized.VectorizedExecutor`, then replays
        only the *evaluated* probes against the shared cache — the metrics
        (round costs, probes, free probes, items fetched/saved, per-query
        stats) are accounted identically to the scalar loop. It requires
        Bernoulli or precomputed oracles (real-data
        :class:`~repro.engine.executor.PredicateOracle` queries stay on the
        scalar path); with deterministic outcomes both engines produce the
        same report.
        """
        if engine not in ("scalar", "vectorized"):
            raise StreamError(f"unknown batch engine {engine!r}")
        if rounds < 1:
            raise StreamError(f"need at least one round, got {rounds}")
        runner = (
            self._run_batch_vectorized
            if engine == "vectorized"
            else self._run_batch_scalar
        )
        tel = self.telemetry
        if tel is None or not tel.enabled:
            return runner(rounds)
        with tel.span(
            "batch", engine=engine, rounds=rounds, queries=len(self._queries)
        ) as attrs:
            marks = dict(self._phase_seconds)
            report = runner(rounds)
            attrs["total_cost"] = report.total_cost
            attrs["probes"] = report.probes
            attrs["replans"] = report.replans
            # This batch's share of the cumulative phase accounting; the
            # attribution report (repro trace --format critical-path)
            # buckets the span's wall time with exactly these numbers.
            attrs["phase_seconds"] = {
                phase: self._phase_seconds[phase] - marks[phase] for phase in marks
            }
        return report

    def _run_batch_scalar(self, rounds: int) -> BatchReport:
        start_probes = self.metrics.total_probes
        start_free = self.metrics.free_probes
        start_fetched = self.metrics.items_fetched
        start_saved = self.metrics.items_saved
        start_replans = self.metrics.replans
        per_query_cost: dict[str, float] = {name: 0.0 for name in self._queries}
        true_counts: dict[str, int] = {name: 0 for name in self._queries}
        round_costs: list[float] = []
        for _ in range(rounds):
            round_total = 0.0
            for name, result in self.step().items():
                per_query_cost[name] = per_query_cost.get(name, 0.0) + result.cost
                true_counts[name] = true_counts.get(name, 0) + (1 if result.value else 0)
                round_total += result.cost
            round_costs.append(round_total)
        return BatchReport(
            rounds=rounds,
            total_cost=sum(round_costs),
            per_query_cost=per_query_cost,
            per_query_true_rate={
                name: true_counts.get(name, 0) / rounds for name in per_query_cost
            },
            round_costs=round_costs,
            probes=self.metrics.total_probes - start_probes,
            free_probes=self.metrics.free_probes - start_free,
            items_fetched=self.metrics.items_fetched - start_fetched,
            items_saved=self.metrics.items_saved - start_saved,
            plan_cache_hit_rate=(
                self.plan_cache.hit_rate if self.plan_cache is not None else 0.0
            ),
            replans=self.metrics.replans - start_replans,
        )

    # -- vectorized round loop ------------------------------------------

    def _draw_round_outcomes(self, query: RegisteredQuery, rounds: int) -> np.ndarray:
        """One ``(rounds, n_leaves)`` outcome matrix for ``query``."""
        leaves = query.tree.leaves
        oracle = query.oracle
        if isinstance(oracle, DriftingBernoulliOracle):
            return oracle.draw_matrix(rounds, len(leaves))
        if isinstance(oracle, BernoulliOracle):
            probs = np.array([leaf.prob for leaf in leaves])
            return oracle.rng.random((rounds, len(leaves))) < probs
        outcomes = getattr(oracle, "outcomes", None)
        if outcomes is None:
            raise StreamError(
                f"query {query.name!r} has an oracle of type "
                f"{type(oracle).__name__} without precomputed outcomes; the "
                "vectorized round loop cannot batch it"
            )
        row = np.empty(len(leaves), dtype=bool)
        for g in range(len(leaves)):
            try:
                row[g] = bool(outcomes[g])
            except (KeyError, IndexError):
                # A partial PrecomputedOracle (legal on the scalar path, where
                # short-circuited leaves are never queried) cannot be batched.
                raise StreamError(
                    f"query {query.name!r} has a precomputed oracle without an "
                    f"outcome for leaf {g}; the vectorized round loop needs every "
                    "leaf — use run_batch(engine='scalar') or supply all outcomes"
                ) from None
        return np.tile(row, (rounds, 1))

    def _vector_executor(self, query: RegisteredQuery) -> VectorizedExecutor:
        """Per-query executor, compiled once and reused across batches."""
        executor = self._vector_executors.get(query.name)
        if executor is None:
            executor = VectorizedExecutor(query.tree, index=query.index)
            self._vector_executors[query.name] = executor
        return executor

    def _run_batch_vectorized(self, rounds: int) -> BatchReport:
        """Bulk-resolution round loop: batch the trials, replay only probes.

        With adaptivity enabled the loop observes each round's evaluated
        outcomes exactly like the scalar loop; when a re-plan fires mid-batch
        the affected queries' *remaining* outcome rows are re-resolved under
        the new schedule (the ground-truth outcome matrix is drawn once up
        front, so a re-plan changes only which probes get evaluated — never
        the data).
        """
        if not self._queries:
            raise StreamError("no queries registered")
        # Validate the whole population up front so a mixed population fails
        # before any oracle rng is consumed (keeping seed streams replayable
        # by a follow-up scalar run).
        for query in self._queries.values():
            if not isinstance(
                query.oracle,
                (BernoulliOracle, PrecomputedOracle, DriftingBernoulliOracle),
            ):
                raise StreamError(
                    f"query {query.name!r} uses {type(query.oracle).__name__}, which "
                    "the vectorized round loop cannot batch; use "
                    "run_batch(engine='scalar')"
                )
        start_replans = self.metrics.replans
        tel = self.telemetry
        recording = tel is not None and tel.enabled
        outcome_matrices: dict[str, np.ndarray] = {}
        batches: dict[str, BatchResult] = {}
        # First batch row each query's current BatchResult corresponds to
        # (advances past re-plans, which re-resolve the remaining rows).
        offsets: dict[str, int] = {}
        # The bulk resolution below is the vectorized engine's *evaluation*
        # work hoisted out of the round loop — credit it to that phase.
        prelude_start = time.perf_counter() if recording else 0.0
        for name, query in self._queries.items():
            outcome_matrices[name] = self._draw_round_outcomes(query, rounds)
            batches[name] = self._vector_executor(query).run_batch(
                query.schedule, outcomes=outcome_matrices[name]
            )
            offsets[name] = 0
        if recording:
            self._phase_seconds["evaluation"] += time.perf_counter() - prelude_start
        leaves_of = {name: query.tree.leaves for name, query in self._queries.items()}
        shared = self.shared_plan_enabled
        per_query_cost: dict[str, float] = {name: 0.0 for name in self._queries}
        true_counts: dict[str, int] = {name: 0 for name in self._queries}
        round_costs: list[float] = []
        batch_probes = batch_free = batch_fetched = batch_saved = 0
        for r in range(rounds):
            wall_start = time.perf_counter() if recording else 0.0
            self.cache.advance(1, max_windows=self._max_windows)
            probes = (
                self.shared_plan().probes if shared else self._blocked_probes().probes
            )
            stats = RoundStats()
            query_cost: dict[str, float] = {name: 0.0 for name in self._queries}
            query_probes: dict[str, int] = {name: 0 for name in self._queries}
            # Largest window fetched per stream so far this round: any probe
            # within it is fully cached, so the fetch call can be elided —
            # it would fetch nothing, charge nothing and mutate nothing.
            round_max: dict[str, int] = {}
            for probe in probes:
                local = r - offsets[probe.query]
                if not batches[probe.query].evaluated[local, probe.gindex]:
                    continue
                leaf = leaves_of[probe.query][probe.gindex]
                if leaf.items <= round_max.get(leaf.stream, 0):
                    cost, fetched_items = 0.0, 0
                else:
                    fetch = self.cache.fetch_window(leaf.stream, leaf.items)
                    cost, fetched_items = fetch.cost, fetch.fetched_items
                    round_max[leaf.stream] = leaf.items
                query_cost[probe.query] += cost
                query_probes[probe.query] += 1
                stats.record_probe(probe.query, leaf.items, cost, fetched_items)
            # Phase split: the window advance, shared-plan probe list and
            # the fetch replay above are this round's *acquisition* (the
            # boolean evaluation happened in the bulk prelude); the
            # accounting and adaptivity below are evaluation.
            acquired_at = time.perf_counter() if recording else 0.0
            self._round += 1
            self.metrics.record_round(stats.cost)
            self.metrics.total_probes += stats.probes
            self.metrics.free_probes += stats.free_probes
            self.metrics.items_fetched += stats.items_fetched
            self.metrics.items_saved += stats.items_saved
            if self.plan_cache is not None:
                self.metrics.plan_cache_hit_rate = self.plan_cache.hit_rate
            round_values: dict[str, bool] = {}
            for name in self._queries:
                query_stats = self.metrics.query_stats(name)
                query_stats.rounds += 1
                query_stats.cost += query_cost[name]
                query_stats.probes += query_probes[name]
                query_stats.items_fetched += stats.query_items_fetched.get(name, 0)
                query_stats.items_saved += stats.query_items_saved.get(name, 0)
                per_query_cost[name] += query_cost[name]
                value = bool(batches[name].values[r - offsets[name]])
                round_values[name] = value
                if value:
                    query_stats.true_count += 1
                    true_counts[name] += 1
            # Sum the round total per query (registration order) exactly like
            # the scalar loop, so float accumulation agrees to the last bit.
            round_total = 0.0
            for name in self._queries:
                round_total += query_cost[name]
            round_costs.append(round_total)
            batch_probes += stats.probes
            batch_free += stats.free_probes
            batch_fetched += stats.items_fetched
            batch_saved += stats.items_saved
            if self.adaptive is not None:
                for name, query in self._queries.items():
                    local = r - offsets[name]
                    evaluated_row = batches[name].evaluated[local]
                    outcome_row = batches[name].outcomes[local]
                    self._observe_outcomes(
                        query,
                        {
                            int(g): bool(outcome_row[g])
                            for g in np.nonzero(evaluated_row)[0]
                        },
                    )
                events = self._maybe_replan()
                if events and r + 1 < rounds:
                    replanned_keys = {event.canonical_key for event in events}
                    for name, query in self._queries.items():
                        if query.canonical.key not in replanned_keys:
                            continue
                        batches[name] = self._vector_executor(query).run_batch(
                            query.schedule,
                            outcomes=outcome_matrices[name][r + 1 :],
                        )
                        offsets[name] = r + 1
            if recording:
                evaluated_at = time.perf_counter()
                self._record_round_telemetry(
                    tel, stats, query_cost, evaluated_at - wall_start
                )
                if tel.detail:
                    for name in self._queries:
                        tel.event(
                            "query-resolution",
                            query=name,
                            round=self._round,
                            cost=query_cost[name],
                            value=round_values[name],
                            probes=query_probes[name],
                        )
                phases = self._phase_seconds
                phases["acquisition"] += acquired_at - wall_start
                phases["evaluation"] += evaluated_at - acquired_at
                phases["telemetry"] += time.perf_counter() - evaluated_at
        return BatchReport(
            rounds=rounds,
            total_cost=sum(round_costs),
            per_query_cost=per_query_cost,
            per_query_true_rate={
                name: true_counts[name] / rounds for name in per_query_cost
            },
            round_costs=round_costs,
            probes=batch_probes,
            free_probes=batch_free,
            items_fetched=batch_fetched,
            items_saved=batch_saved,
            plan_cache_hit_rate=(
                self.plan_cache.hit_rate if self.plan_cache is not None else 0.0
            ),
            replans=self.metrics.replans - start_replans,
        )


def run_isolated(
    registry: StreamRegistry,
    queries: Sequence[tuple[str, TreeLike]],
    rounds: int,
    *,
    scheduler: str | Scheduler = DEFAULT_SCHEDULER,
    oracle_factory: Callable[[str], LeafOracle] | None = None,
    warmup: int = 64,
) -> dict[str, float]:
    """Each query on its own private cache and plan — the no-sharing baseline.

    Returns per-query total cost over ``rounds``; ``sum(result.values())``
    is the number the shared server's total should beat. ``oracle_factory``
    builds one oracle per query (default: fresh :class:`BernoulliOracle`
    seeded per query, so runs are reproducible).
    """
    if rounds < 1:
        raise StreamError(f"need at least one round, got {rounds}")
    chosen = get_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
    totals: dict[str, float] = {}
    for ordinal, (name, tree) in enumerate(queries):
        dnf = _as_dnf(tree)
        registry.validate_tree_streams(dnf.streams)
        oracle = (
            oracle_factory(name)
            if oracle_factory is not None
            else BernoulliOracle(seed=ordinal)
        )
        schedule = validate_schedule(dnf, chosen.schedule(dnf))
        max_windows = compute_max_windows([dnf])
        cache = registry.build_cache(
            now=max(warmup, max(leaf.items for leaf in dnf.leaves))
        )
        executor = ScheduleExecutor(dnf, cache, oracle)
        total = 0.0
        for _ in range(rounds):
            cache.advance(1, max_windows=max_windows)
            total += executor.run(schedule).cost
        totals[name] = total
    return totals
