"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Specific subclasses distinguish malformed inputs from
resource-budget violations (the exhaustive optimizers are exponential and
guard themselves with explicit budgets).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidLeafError",
    "InvalidTreeError",
    "InvalidScheduleError",
    "BudgetExceededError",
    "ParseError",
    "StreamError",
    "AdmissionError",
    "TelemetryError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidLeafError(ReproError, ValueError):
    """A leaf was constructed with invalid parameters (items < 1, p outside [0,1], ...)."""


class InvalidTreeError(ReproError, ValueError):
    """A query tree is structurally invalid (empty operator, missing stream cost, ...)."""


class InvalidScheduleError(ReproError, ValueError):
    """A schedule is not a permutation of the tree's leaves."""


class BudgetExceededError(ReproError, RuntimeError):
    """An exponential-time search exceeded its configured node budget."""


class ParseError(ReproError, ValueError):
    """The query-language parser rejected its input."""


class StreamError(ReproError, ValueError):
    """A stream operation failed (unknown stream, bad window, ...)."""


class AdmissionError(ReproError, RuntimeError):
    """A serving-layer admission limit rejected a query (server full, duplicate name, ...)."""


class TelemetryError(ReproError, ValueError):
    """An observability operation was misused (metric type clash, bad bucket bounds, ...)."""


class AnalysisError(ReproError, ValueError):
    """The static-analysis engine was misconfigured (unknown rule, bad path, ...)."""
