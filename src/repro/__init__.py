"""repro — Cost-optimal execution of boolean query trees with shared streams.

A production-quality reproduction of Casanova, Lim, Robert, Vivien, Zaidouni,
*Cost-Optimal Execution of Boolean Query Trees with Shared Streams*,
IPDPS 2014. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Quickstart::

    from repro import Leaf, AndTree, algorithm1_order, and_tree_cost

    tree = AndTree(
        [Leaf("A", 1, 0.75), Leaf("A", 2, 0.1), Leaf("B", 1, 0.5)],
        costs={"A": 1.0, "B": 1.0},
    )
    order = algorithm1_order(tree)          # the paper's Algorithm 1
    print(and_tree_cost(tree, order))       # 1.825 (paper §II-A)
"""

from repro.core import (
    AndNode,
    AndTree,
    DnfPrefixCost,
    DnfTree,
    Leaf,
    LeafNode,
    MonteCarloResult,
    OrNode,
    QueryTree,
    Schedule,
    algorithm1_order,
    and_tree_cost,
    brute_force_and_tree,
    dnf_schedule_cost,
    exact_schedule_cost,
    identity_schedule,
    is_depth_first,
    make_depth_first,
    monte_carlo_cost,
    random_schedule,
    read_once_order,
    schedule_cost,
    validate_schedule,
)
from repro.errors import (
    AdmissionError,
    BudgetExceededError,
    InvalidLeafError,
    InvalidScheduleError,
    InvalidTreeError,
    ParseError,
    ReproError,
    StreamError,
    TelemetryError,
)
from repro.obs import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    render_prometheus,
)
from repro.adaptive import AdaptivePolicy, ReplanEvent
from repro.cluster import (
    ClusterReport,
    ClusterServer,
    Partition,
    PartitionReport,
    partition_by_overlap,
)
from repro.service import (
    CanonicalForm,
    PlanCache,
    QueryServer,
    canonical_key,
    canonicalize,
    run_isolated,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data model
    "Leaf",
    "AndTree",
    "DnfTree",
    "QueryTree",
    "AndNode",
    "OrNode",
    "LeafNode",
    "Schedule",
    # evaluators
    "and_tree_cost",
    "dnf_schedule_cost",
    "schedule_cost",
    "DnfPrefixCost",
    "exact_schedule_cost",
    "monte_carlo_cost",
    "MonteCarloResult",
    # schedules
    "validate_schedule",
    "identity_schedule",
    "random_schedule",
    "is_depth_first",
    "make_depth_first",
    # optimal algorithms
    "algorithm1_order",
    "read_once_order",
    "brute_force_and_tree",
    # serving layer
    "QueryServer",
    "PlanCache",
    "AdaptivePolicy",
    "ReplanEvent",
    "CanonicalForm",
    "canonicalize",
    "canonical_key",
    "run_isolated",
    # cluster layer
    "ClusterServer",
    "ClusterReport",
    "Partition",
    "PartitionReport",
    "partition_by_overlap",
    # observability
    "Telemetry",
    "MetricsRegistry",
    "Tracer",
    "render_prometheus",
    # errors
    "ReproError",
    "InvalidLeafError",
    "InvalidTreeError",
    "InvalidScheduleError",
    "BudgetExceededError",
    "ParseError",
    "StreamError",
    "AdmissionError",
    "TelemetryError",
]
