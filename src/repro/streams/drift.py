"""Time-varying leaf selectivities: drift schedules and drifting sources.

The paper treats each leaf's success probability ``p_j`` as a static number
"estimated based on historical traces". A production server sees the
opposite: selectivities *drift* — a heart-rate predicate that almost never
fired during sleep fires constantly during a workout. This module provides
the ground-truth side of that story:

* :class:`DriftSchedule` — a piecewise trajectory of per-leaf success
  probabilities over device rounds, built from :class:`StepDrift` (an abrupt
  regime change at a round) and :class:`RampDrift` (a linear glide between
  two rounds) changes;
* :class:`DriftingSource` — a 0/1-valued :class:`~repro.streams.sources.Source`
  whose emission probability follows a single-probability drift trajectory
  (for data-path scenarios where predicates threshold real values).

The engine-side consumer is
:class:`~repro.engine.executor.DriftingBernoulliOracle`, which draws leaf
outcomes from ``schedule.probs_at(round)`` instead of the (stale) admission
probabilities, and the serving-layer consumer is ``repro.adaptive``, which
estimates the drifted probabilities back from observed outcomes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union

import numpy as np

from repro.errors import StreamError
from repro.streams.sources import Source

__all__ = ["StepDrift", "RampDrift", "DriftSchedule", "DriftingSource"]


def _validated_targets(targets: Mapping[int, float]) -> dict[int, float]:
    out: dict[int, float] = {}
    for gindex, prob in targets.items():
        gindex = int(gindex)
        prob = float(prob)
        if gindex < 0:
            raise StreamError(f"drift target leaf index must be >= 0, got {gindex}")
        if not 0.0 <= prob <= 1.0:
            raise StreamError(f"drift target probability must be in [0, 1], got {prob}")
        out[gindex] = prob
    if not out:
        raise StreamError("a drift change needs at least one target leaf")
    return out


@dataclass(frozen=True)
class StepDrift:
    """An abrupt regime change: targeted leaves jump to new probabilities.

    From round ``at`` (inclusive) onward, leaf ``g`` succeeds with probability
    ``targets[g]``; untargeted leaves are untouched.
    """

    at: int
    targets: Mapping[int, float]

    def __post_init__(self) -> None:
        if self.at < 0:
            raise StreamError(f"step round must be >= 0, got {self.at}")
        object.__setattr__(self, "targets", _validated_targets(self.targets))

    @property
    def start(self) -> int:
        return self.at

    def apply(self, probs: np.ndarray, round_index: int) -> np.ndarray:
        if round_index < self.at:
            return probs
        out = probs.copy()
        for gindex, prob in self.targets.items():
            out[gindex] = prob
        return out


@dataclass(frozen=True)
class RampDrift:
    """A linear glide: targeted leaves move to new probabilities over a window.

    Between rounds ``start`` (exclusive) and ``end`` (inclusive) each targeted
    leaf interpolates linearly from its incoming probability to ``targets[g]``;
    from ``end`` onward it sits at the target.
    """

    start: int
    end: int
    targets: Mapping[int, float]

    def __post_init__(self) -> None:
        if self.start < 0:
            raise StreamError(f"ramp start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise StreamError(
                f"ramp must end after it starts, got [{self.start}, {self.end}]"
            )
        object.__setattr__(self, "targets", _validated_targets(self.targets))

    def apply(self, probs: np.ndarray, round_index: int) -> np.ndarray:
        if round_index <= self.start:
            return probs
        fraction = min(1.0, (round_index - self.start) / (self.end - self.start))
        out = probs.copy()
        for gindex, prob in self.targets.items():
            out[gindex] = probs[gindex] + fraction * (prob - probs[gindex])
        return out


DriftChange = Union[StepDrift, RampDrift]


@dataclass(frozen=True)
class DriftSchedule:
    """Per-leaf success probabilities as a function of the device round.

    Parameters
    ----------
    base:
        Round-0 probability per global leaf index (usually the admission-time
        estimates, so round 0 matches what the scheduler planned for).
    changes:
        Step/ramp changes, applied in sequence: each change sees the
        probabilities produced by the previous ones, so a ramp scheduled
        after a step glides away from the stepped value.
    """

    base: tuple[float, ...]
    changes: tuple[DriftChange, ...] = field(default_factory=tuple)

    def __init__(
        self, base: Sequence[float], changes: Sequence[DriftChange] = ()
    ) -> None:
        base = tuple(float(p) for p in base)
        if not base:
            raise StreamError("a drift schedule needs at least one leaf")
        for prob in base:
            if not 0.0 <= prob <= 1.0:
                raise StreamError(f"base probability must be in [0, 1], got {prob}")
        changes = tuple(changes)
        for change in changes:
            if not isinstance(change, (StepDrift, RampDrift)):
                raise StreamError(
                    f"drift changes must be StepDrift or RampDrift, got {type(change).__name__}"
                )
            if max(change.targets) >= len(base):
                raise StreamError(
                    f"drift change targets leaf {max(change.targets)}, but the "
                    f"schedule covers only {len(base)} leaves"
                )
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "changes", changes)

    @property
    def n_leaves(self) -> int:
        return len(self.base)

    @property
    def is_static(self) -> bool:
        return not self.changes

    def probs_at(self, round_index: int) -> np.ndarray:
        """The true per-leaf success probabilities at ``round_index``."""
        if round_index < 0:
            raise StreamError(f"round index must be >= 0, got {round_index}")
        probs = np.asarray(self.base, dtype=float)
        for change in self.changes:
            probs = change.apply(probs, round_index)
        return probs

    def prob_matrix(self, start: int, rounds: int) -> np.ndarray:
        """``(rounds, n_leaves)`` trajectory for rounds ``start..start+rounds-1``."""
        if rounds < 1:
            raise StreamError(f"need at least one round, got {rounds}")
        return np.stack([self.probs_at(start + r) for r in range(rounds)])

    def settled_after(self) -> int:
        """First round from which the trajectory no longer changes."""
        latest = 0
        for change in self.changes:
            latest = max(latest, change.end if isinstance(change, RampDrift) else change.at)
        return latest


class DriftingSource(Source):
    """A 0/1 tape whose success probability follows a drift trajectory.

    Item ``tau`` is 1 with probability ``schedule.probs_at(tau)[0]`` — the
    schedule must cover exactly one "leaf", which here plays the role of the
    emission probability. Useful with threshold predicates (``LAST >= 1``)
    to exercise the full data path under drifting selectivity.
    """

    def __init__(self, schedule: DriftSchedule, seed: int | None = None) -> None:
        if schedule.n_leaves != 1:
            raise StreamError(
                f"a drifting source needs a single-probability schedule, "
                f"got {schedule.n_leaves} leaves"
            )
        self.schedule = schedule
        self._rng = np.random.default_rng(seed)
        self._values: list[float] = []
        self._extend_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Same contract as _SequentialSource: the lock is process-local, the
        # RNG + memoized prefix are the tape and travel intact.
        state = self.__dict__.copy()
        del state["_extend_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._extend_lock = threading.Lock()

    def window(self, end_tau: int, count: int) -> np.ndarray:
        """Extend once under the lock and slice (see ``Source.window``)."""
        start = end_tau - count + 1
        if start < 0:
            raise StreamError(
                f"window of {count} items ending at tau={end_tau} precedes the tape start"
            )
        if end_tau >= len(self._values):
            self.value_at(end_tau)
        return np.array(self._values[start : end_tau + 1])

    def value_at(self, tau: int) -> float:
        if tau < 0:
            raise StreamError(f"production index must be >= 0, got {tau}")
        # Locked like _SequentialSource: one drifting tape may back several
        # caches read from concurrent cluster shards, and each item must be
        # drawn with its *own* production index's probability.
        if tau >= len(self._values):
            with self._extend_lock:
                while len(self._values) <= tau:
                    produced = len(self._values)
                    prob = float(self.schedule.probs_at(produced)[0])
                    self._values.append(float(self._rng.random() < prob))
        return self._values[tau]
