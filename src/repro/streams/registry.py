"""Registry binding stream specs to data sources.

A :class:`StreamRegistry` is the one-stop description of the sensing
environment: for each stream, its :class:`~repro.streams.stream.StreamSpec`
(cost, period, metadata) and its :class:`~repro.streams.sources.Source`
(the data tape). The execution engine builds its caches from a registry, and
the scheduling core gets its cost table from :meth:`cost_table`.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import StreamError
from repro.streams.cache import DataItemCache
from repro.streams.sources import Source
from repro.streams.stream import StreamSpec

__all__ = ["StreamRegistry"]


class StreamRegistry:
    """Named collection of (spec, source) pairs."""

    def __init__(self) -> None:
        self._specs: dict[str, StreamSpec] = {}
        self._sources: dict[str, Source] = {}

    def add(self, spec: StreamSpec, source: Source) -> "StreamRegistry":
        """Register a stream; returns self for chaining."""
        if spec.name in self._specs:
            raise StreamError(f"stream {spec.name!r} already registered")
        self._specs[spec.name] = spec
        self._sources[spec.name] = source
        return self

    def spec(self, name: str) -> StreamSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise StreamError(f"unknown stream {name!r}") from None

    def source(self, name: str) -> Source:
        try:
            return self._sources[name]
        except KeyError:
            raise StreamError(f"unknown stream {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def cost_table(self) -> dict[str, float]:
        """Per-item costs for tree construction (``c(S_k)`` of the paper)."""
        return {name: spec.cost_per_item for name, spec in self._specs.items()}

    def build_cache(self, *, now: int = 64) -> DataItemCache:
        """A fresh :class:`DataItemCache` over this registry's sources."""
        return DataItemCache(dict(self._sources), self.cost_table(), now=now)

    def validate_tree_streams(self, streams: Mapping[str, float] | tuple[str, ...]) -> None:
        """Check that every stream a tree references is registered."""
        for name in streams:
            if name not in self._specs:
                raise StreamError(f"tree references unregistered stream {name!r}")
