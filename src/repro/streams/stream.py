"""Stream specifications.

A :class:`StreamSpec` describes one sensor data stream: its name, the cost of
acquiring one data item (``c(S_k)`` in the paper — e.g. joules per item), the
production period, and optional descriptive metadata. Specs are the bridge
between the scheduling core (which only needs the cost table) and the
execution engine (which also needs sources and periods).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import StreamError

__all__ = ["StreamSpec"]


@dataclass(frozen=True, slots=True)
class StreamSpec:
    """Description of one sensor data stream.

    Parameters
    ----------
    name:
        Stream identifier used by leaves (e.g. ``"HR"`` for heart rate).
    cost_per_item:
        Acquisition cost of one data item, ``c(S_k)``; any non-negative unit
        (joules, bytes, abstract units).
    period:
        Time steps between two produced items (1.0 = one item per tick).
    description:
        Free-form human context (sensor type, units, ...).
    medium:
        Optional communication-medium tag (``"ble"``, ``"wifi"``, ...);
        purely informational unless an energy model derives the cost.
    """

    name: str
    cost_per_item: float
    period: float = 1.0
    description: str = field(default="", compare=False)
    medium: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise StreamError(f"stream name must be a non-empty string, got {self.name!r}")
        cost = float(self.cost_per_item)
        if math.isnan(cost) or cost < 0.0:
            raise StreamError(f"cost_per_item must be >= 0, got {self.cost_per_item!r}")
        object.__setattr__(self, "cost_per_item", cost)
        if not self.period > 0.0:
            raise StreamError(f"period must be > 0, got {self.period!r}")
