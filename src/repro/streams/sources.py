"""Synthetic data sources standing in for physical sensors.

The paper's system pulls data items from real sensors (GPS, accelerometer,
heart rate, SPO2, ...). Offline we substitute deterministic-by-seed
generators that expose the same interface: ``value_at(tau)`` returns the item
produced at absolute production index ``tau`` (0, 1, 2, ...). Values are
generated lazily and memoized, so a source behaves like an append-only tape —
re-reading history is cheap and consistent, which is exactly what the pull
model's item cache relies on.

Provided families: i.i.d. uniform/Gaussian noise, bounded random walks
(heart-rate-like), periodic signals with noise (accelerometer-like), a
discrete Markov chain (activity states), constants, and replay of recorded
traces.
"""

from __future__ import annotations

import abc
import math
import threading
from typing import Sequence

import numpy as np

from repro.errors import StreamError

__all__ = [
    "Source",
    "UniformSource",
    "GaussianSource",
    "RandomWalkSource",
    "PeriodicSource",
    "MarkovChainSource",
    "ConstantSource",
    "ReplaySource",
]


class Source(abc.ABC):
    """An append-only tape of data items indexed by production time."""

    @abc.abstractmethod
    def value_at(self, tau: int) -> float:
        """The item produced at absolute index ``tau >= 0``."""

    def window(self, end_tau: int, count: int) -> np.ndarray:
        """Items ``end_tau - count + 1 .. end_tau``, newest last.

        Raises :class:`~repro.errors.StreamError` when the window would reach
        before the start of the tape.
        """
        start = end_tau - count + 1
        if start < 0:
            raise StreamError(
                f"window of {count} items ending at tau={end_tau} precedes the tape start"
            )
        return np.array([self.value_at(tau) for tau in range(start, end_tau + 1)])


class _SequentialSource(Source):
    """Base for sources whose items must be generated in order (memoized).

    Generation is guarded by a lock so one tape can back several caches read
    from concurrent threads (e.g. two cluster shards sharing a cut stream);
    the memoized prefix is append-only, so the lock-free fast path for
    already-produced items stays consistent.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._rng = np.random.default_rng(seed)
        self._values: list[float] = []
        self._extend_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # The extend lock is process-local synchronization state, not tape
        # state: drop it so tapes can cross a process boundary (spawned
        # cluster shard workers pickle the whole stream registry). The RNG
        # and memoized prefix pickle as-is, so the copy continues the exact
        # same value sequence from where the donor stopped.
        state = self.__dict__.copy()
        del state["_extend_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._extend_lock = threading.Lock()

    @abc.abstractmethod
    def _next(self, tau: int, rng: np.random.Generator) -> float:
        """Generate the item at index ``tau`` (called in strictly increasing order)."""

    def _extend_to(self, tau: int) -> None:
        """Materialize the tape through ``tau`` under one lock acquisition."""
        if tau < len(self._values):
            return
        with self._extend_lock:
            while len(self._values) <= tau:
                self._values.append(float(self._next(len(self._values), self._rng)))

    def value_at(self, tau: int) -> float:
        if tau < 0:
            raise StreamError(f"production index must be >= 0, got {tau}")
        self._extend_to(tau)
        return self._values[tau]

    def window(self, end_tau: int, count: int) -> np.ndarray:
        """Single-lock override: extend the tape once, then slice the prefix.

        The base implementation calls :meth:`value_at` per item, paying one
        lock acquisition per element; a window is one contiguous stretch of
        the append-only tape, so one extension and a slice give the same
        values at a fraction of the locking traffic.
        """
        start = end_tau - count + 1
        if start < 0:
            raise StreamError(
                f"window of {count} items ending at tau={end_tau} precedes the tape start"
            )
        self._extend_to(end_tau)
        return np.array(self._values[start : end_tau + 1])


class UniformSource(_SequentialSource):
    """I.i.d. uniform values in ``[low, high)``."""

    def __init__(self, low: float = 0.0, high: float = 1.0, seed: int | None = None) -> None:
        super().__init__(seed)
        if not high > low:
            raise StreamError(f"need high > low, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def _next(self, tau: int, rng: np.random.Generator) -> float:
        return rng.uniform(self.low, self.high)


class GaussianSource(_SequentialSource):
    """I.i.d. Gaussian values."""

    def __init__(self, mean: float = 0.0, std: float = 1.0, seed: int | None = None) -> None:
        super().__init__(seed)
        if not std >= 0.0:
            raise StreamError(f"std must be >= 0, got {std}")
        self.mean = float(mean)
        self.std = float(std)

    def _next(self, tau: int, rng: np.random.Generator) -> float:
        return rng.normal(self.mean, self.std)


class RandomWalkSource(_SequentialSource):
    """Bounded Gaussian random walk (heart-rate-like slow drift)."""

    def __init__(
        self,
        start: float = 0.0,
        step_std: float = 1.0,
        seed: int | None = None,
        *,
        low: float = -math.inf,
        high: float = math.inf,
    ) -> None:
        super().__init__(seed)
        if not high >= low:
            raise StreamError(f"need high >= low, got [{low}, {high}]")
        self.start = float(start)
        self.step_std = float(step_std)
        self.low = float(low)
        self.high = float(high)
        self._current = float(min(max(start, low), high))

    def _next(self, tau: int, rng: np.random.Generator) -> float:
        if tau > 0:
            self._current += rng.normal(0.0, self.step_std)
            self._current = min(max(self._current, self.low), self.high)
        return self._current


class PeriodicSource(_SequentialSource):
    """Sinusoid plus Gaussian noise (accelerometer-like)."""

    def __init__(
        self,
        amplitude: float = 1.0,
        period: float = 20.0,
        noise_std: float = 0.0,
        offset: float = 0.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed)
        if not period > 0.0:
            raise StreamError(f"period must be > 0, got {period}")
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.noise_std = float(noise_std)
        self.offset = float(offset)

    def _next(self, tau: int, rng: np.random.Generator) -> float:
        value = self.offset + self.amplitude * math.sin(2.0 * math.pi * tau / self.period)
        if self.noise_std > 0.0:
            value += rng.normal(0.0, self.noise_std)
        return value


class MarkovChainSource(_SequentialSource):
    """Discrete-state Markov chain emitting per-state values (activity modes)."""

    def __init__(
        self,
        values: Sequence[float],
        transition: Sequence[Sequence[float]],
        seed: int | None = None,
        initial_state: int = 0,
    ) -> None:
        super().__init__(seed)
        self.values = [float(v) for v in values]
        matrix = np.asarray(transition, dtype=float)
        if matrix.shape != (len(self.values), len(self.values)):
            raise StreamError(
                f"transition matrix shape {matrix.shape} does not match {len(self.values)} states"
            )
        if np.any(matrix < 0) or not np.allclose(matrix.sum(axis=1), 1.0):
            raise StreamError("transition matrix rows must be non-negative and sum to 1")
        if not 0 <= initial_state < len(self.values):
            raise StreamError(f"initial state {initial_state} out of range")
        self.transition = matrix
        self._state = initial_state

    def _next(self, tau: int, rng: np.random.Generator) -> float:
        if tau > 0:
            self._state = int(rng.choice(len(self.values), p=self.transition[self._state]))
        return self.values[self._state]


class ConstantSource(Source):
    """Always the same value."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def value_at(self, tau: int) -> float:
        if tau < 0:
            raise StreamError(f"production index must be >= 0, got {tau}")
        return self.value


class ReplaySource(Source):
    """Replay of a recorded trace; reading past the end raises."""

    def __init__(self, values: Sequence[float]) -> None:
        self.values = [float(v) for v in values]
        if not self.values:
            raise StreamError("cannot replay an empty trace")

    def value_at(self, tau: int) -> float:
        if tau < 0:
            raise StreamError(f"production index must be >= 0, got {tau}")
        if tau >= len(self.values):
            raise StreamError(
                f"trace has {len(self.values)} items; index {tau} is past the end"
            )
        return self.values[tau]
