"""Historical traces and probability estimation.

Paper §I: leaf success probabilities and costs "can be inferred based on
historical traces obtained for previous query executions". This module
records per-leaf outcomes and per-stream acquisition counts across query
rounds and turns them into the probability estimates the schedulers consume.

Estimation uses a Beta(1, 1) (Laplace) posterior mean by default, so leaves
that have never failed still get a probability strictly inside (0, 1) — the
schedulers divide by both ``p`` and ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

__all__ = ["LeafTrace", "TraceRecorder", "estimate_probability"]


def estimate_probability(
    successes: int, trials: int, *, prior: tuple[float, float] = (1.0, 1.0)
) -> float:
    """Beta-posterior-mean estimate of a success probability.

    ``prior=(1, 1)`` is Laplace smoothing; ``prior=(0.5, 0.5)`` is Jeffreys.
    With zero trials this returns the prior mean.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes} successes of {trials} trials")
    alpha, beta = prior
    return (successes + alpha) / (trials + alpha + beta)


@dataclass(slots=True)
class LeafTrace:
    """Outcome counts for one leaf across recorded query rounds."""

    evaluations: int = 0
    successes: int = 0

    def record(self, outcome: bool) -> None:
        self.evaluations += 1
        if outcome:
            self.successes += 1

    def estimate(self, *, prior: tuple[float, float] = (1.0, 1.0)) -> float:
        return estimate_probability(self.successes, self.evaluations, prior=prior)


@dataclass(slots=True)
class TraceRecorder:
    """Accumulates per-leaf outcomes and per-stream acquisition statistics."""

    leaves: dict[Hashable, LeafTrace] = field(default_factory=dict)
    stream_items: dict[str, int] = field(default_factory=dict)
    stream_cost: dict[str, float] = field(default_factory=dict)
    rounds: int = 0

    def record_outcome(self, leaf_key: Hashable, outcome: bool) -> None:
        self.leaves.setdefault(leaf_key, LeafTrace()).record(outcome)

    def record_acquisition(self, stream: str, items: int, cost: float) -> None:
        self.stream_items[stream] = self.stream_items.get(stream, 0) + items
        self.stream_cost[stream] = self.stream_cost.get(stream, 0.0) + cost

    def end_round(self) -> None:
        self.rounds += 1

    def estimates(self, *, prior: tuple[float, float] = (1.0, 1.0)) -> dict[Hashable, float]:
        """Per-leaf success-probability estimates from the recorded outcomes."""
        return {key: trace.estimate(prior=prior) for key, trace in self.leaves.items()}

    def mean_cost_per_item(self) -> Mapping[str, float]:
        """Empirical per-item cost per stream (sanity check against the model)."""
        out: dict[str, float] = {}
        for stream, items in self.stream_items.items():
            if items > 0:
                out[stream] = self.stream_cost.get(stream, 0.0) / items
        return out
