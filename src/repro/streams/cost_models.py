"""Acquisition-cost models, including a per-medium energy model.

The paper abstracts data acquisition cost into a per-item constant
``c(S_k)`` and motivates it as "the energy cost, in joules, of acquiring one
data item based on the communication medium used for the stream and the data
item size". This module provides exactly that family:

* :class:`UniformCost` — every stream costs the same per item (the paper's
  worked examples use unit cost);
* :class:`TableCost` — explicit per-stream costs (the random experiments use
  U[1, 10] draws);
* :class:`EnergyCost` — joules per item derived from an item's payload size
  and a :class:`Medium` energy profile (per-byte energy + per-transfer
  overhead), with presets for common wearable-sensor radios.

The magnitudes of the presets are representative, not measured: the
scheduling algorithms only consume the resulting per-item constants.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import StreamError

__all__ = [
    "Medium",
    "BLUETOOTH_LE",
    "WIFI",
    "ZIGBEE",
    "CELLULAR",
    "CostModel",
    "UniformCost",
    "TableCost",
    "EnergyCost",
    "cost_table",
]


@dataclass(frozen=True, slots=True)
class Medium:
    """Energy profile of a communication medium.

    ``joules_per_byte`` covers payload transfer; ``joules_per_transfer``
    covers fixed per-item overhead (radio wake-up, headers, ACKs).
    """

    name: str
    joules_per_byte: float
    joules_per_transfer: float = 0.0

    def item_cost(self, item_bytes: int) -> float:
        """Energy to acquire one item of ``item_bytes`` payload bytes."""
        if item_bytes < 0:
            raise StreamError(f"item size must be >= 0 bytes, got {item_bytes}")
        return self.joules_per_byte * item_bytes + self.joules_per_transfer


#: Representative radio profiles (orders of magnitude from wearable-platform
#: datasheets; see DESIGN.md substitutions table).
BLUETOOTH_LE = Medium("ble", joules_per_byte=1.0e-6, joules_per_transfer=5.0e-5)
ZIGBEE = Medium("zigbee", joules_per_byte=2.0e-6, joules_per_transfer=8.0e-5)
WIFI = Medium("wifi", joules_per_byte=5.0e-7, joules_per_transfer=1.0e-3)
CELLULAR = Medium("cellular", joules_per_byte=2.5e-6, joules_per_transfer=5.0e-3)


class CostModel(abc.ABC):
    """Maps stream names to per-item acquisition costs."""

    @abc.abstractmethod
    def per_item(self, stream: str) -> float:
        """Cost of one data item of ``stream``."""


class UniformCost(CostModel):
    """Every stream costs ``value`` per item (paper examples: 1.0)."""

    def __init__(self, value: float = 1.0) -> None:
        if not value >= 0.0:
            raise StreamError(f"uniform cost must be >= 0, got {value!r}")
        self.value = float(value)

    def per_item(self, stream: str) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"UniformCost({self.value!r})"


class TableCost(CostModel):
    """Explicit per-stream costs with an optional default."""

    def __init__(self, table: Mapping[str, float], default: float | None = None) -> None:
        self.table = {name: float(value) for name, value in table.items()}
        for name, value in self.table.items():
            if not value >= 0.0:
                raise StreamError(f"cost of {name!r} must be >= 0, got {value!r}")
        self.default = default if default is None else float(default)

    def per_item(self, stream: str) -> float:
        if stream in self.table:
            return self.table[stream]
        if self.default is not None:
            return self.default
        raise StreamError(f"no cost configured for stream {stream!r}")

    def __repr__(self) -> str:
        return f"TableCost({self.table!r}, default={self.default!r})"


class EnergyCost(CostModel):
    """Joules per item from payload size and medium profile.

    Parameters
    ----------
    item_bytes:
        Payload size per data item, per stream.
    medium:
        Either one :class:`Medium` for every stream or a per-stream mapping.
    """

    def __init__(
        self,
        item_bytes: Mapping[str, int],
        medium: Medium | Mapping[str, Medium] = BLUETOOTH_LE,
    ) -> None:
        self.item_bytes = dict(item_bytes)
        self.medium = medium

    def medium_for(self, stream: str) -> Medium:
        if isinstance(self.medium, Medium):
            return self.medium
        try:
            return self.medium[stream]
        except KeyError:
            raise StreamError(f"no medium configured for stream {stream!r}") from None

    def per_item(self, stream: str) -> float:
        try:
            size = self.item_bytes[stream]
        except KeyError:
            raise StreamError(f"no item size configured for stream {stream!r}") from None
        return self.medium_for(stream).item_cost(size)

    def __repr__(self) -> str:
        return f"EnergyCost({self.item_bytes!r}, medium={self.medium!r})"


def cost_table(model: CostModel, streams: Iterable[str]) -> dict[str, float]:
    """Materialize a cost model into the plain dict the tree types consume."""
    return {name: model.per_item(name) for name in streams}
