"""Failure injection for sensor sources.

Real wearable links drop samples; these wrappers turn any
:class:`~repro.streams.sources.Source` into a faulty one so the engine's
behaviour under sensor failure can be tested and demonstrated:

* :class:`DropoutSource` — each item is independently *lost* with
  probability ``drop_prob``; a lost item is replaced by the last good value
  (hold) or a fixed fill value, mirroring common firmware behaviour;
* :class:`FailingSource` — reads raise :class:`~repro.errors.StreamError`
  with some probability (radio outage); deterministic given the seed, and
  deterministic per item: retrying the same item yields the same outcome
  until :meth:`repair` is called.

Both keep the tape-determinism contract of :class:`Source` (re-reading an
index gives the same value/outcome), which the stateful cache tests rely on.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import StreamError
from repro.streams.sources import Source

__all__ = ["DropoutSource", "FailingSource"]


class DropoutSource(Source):
    """Wraps a source; items are lost (and held/filled) with ``drop_prob``."""

    def __init__(
        self,
        inner: Source,
        drop_prob: float,
        *,
        seed: int | None = None,
        fill: float | None = None,
    ) -> None:
        if not 0.0 <= drop_prob < 1.0:
            raise StreamError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self.inner = inner
        self.drop_prob = float(drop_prob)
        self.fill = fill
        self._rng = np.random.default_rng(seed)
        self._dropped: dict[int, bool] = {}
        self._draw_lock = threading.Lock()
        self.drop_count = 0

    def __getstate__(self) -> dict:
        # The draw lock is process-local; the RNG and memoized drop map are
        # the deterministic tape state and must cross the boundary intact.
        state = self.__dict__.copy()
        del state["_draw_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._draw_lock = threading.Lock()

    def _is_dropped(self, tau: int) -> bool:
        if tau not in self._dropped:
            # Draw lazily but memoize (locked: one tape may back several
            # caches on concurrent cluster shards) — the tape must stay
            # deterministic.
            with self._draw_lock:
                if tau not in self._dropped:
                    dropped = bool(self._rng.random() < self.drop_prob)
                    self._dropped[tau] = dropped
                    if dropped:
                        self.drop_count += 1
        return self._dropped[tau]

    def value_at(self, tau: int) -> float:
        if tau < 0:
            raise StreamError(f"production index must be >= 0, got {tau}")
        if not self._is_dropped(tau):
            return self.inner.value_at(tau)
        if self.fill is not None:
            return self.fill
        # hold the last good value; scan back (tau=0 falls through to inner)
        cursor = tau - 1
        while cursor >= 0:
            if not self._is_dropped(cursor):
                return self.inner.value_at(cursor)
            cursor -= 1
        return self.inner.value_at(tau)  # no good value yet: pass through


class FailingSource(Source):
    """Wraps a source; reads fail (raise StreamError) with ``fail_prob``."""

    def __init__(self, inner: Source, fail_prob: float, *, seed: int | None = None) -> None:
        if not 0.0 <= fail_prob < 1.0:
            raise StreamError(f"fail_prob must be in [0, 1), got {fail_prob}")
        self.inner = inner
        self.fail_prob = float(fail_prob)
        self._rng = np.random.default_rng(seed)
        self._failed: dict[int, bool] = {}
        self._draw_lock = threading.Lock()
        self.failure_count = 0

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_draw_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._draw_lock = threading.Lock()

    def value_at(self, tau: int) -> float:
        if tau < 0:
            raise StreamError(f"production index must be >= 0, got {tau}")
        if tau not in self._failed:
            with self._draw_lock:
                if tau not in self._failed:
                    self._failed[tau] = bool(self._rng.random() < self.fail_prob)
        if self._failed[tau]:
            self.failure_count += 1
            raise StreamError(f"simulated sensor outage reading item {tau}")
        return self.inner.value_at(tau)

    def repair(self) -> None:
        """Clear recorded outages (the radio came back)."""
        self._failed.clear()
