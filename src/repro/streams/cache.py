"""The device's data-item memory — the heart of the *shared* cost model.

Paper §I: "The device that processes the query acquires data items from
streams and holds each data item in memory until that data item is no longer
relevant. A data item from a stream is no longer relevant when it is older
than the maximum time-window used for that stream in the query."

:class:`DataItemCache` implements exactly that pull model over
:class:`~repro.streams.sources.Source` tapes:

* time is discrete; at device time ``now``, the newest available item of a
  stream is the one produced at absolute index ``now - 1``, and "the last
  ``d`` items" are absolute indices ``now - d .. now - 1``;
* :meth:`fetch_window` returns those ``d`` values, *charging only for items
  not already cached* — this is what makes later same-stream leaves cheap;
* :meth:`advance` moves time forward (new items get produced by the sources)
  and evicts items older than each stream's maximum relevant window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import StreamError
from repro.streams.sources import Source

__all__ = ["DataItemCache", "CountingCache", "FetchResult"]


@dataclass(frozen=True, slots=True)
class FetchResult:
    """Outcome of one window fetch."""

    values: np.ndarray | None
    fetched_items: int
    cost: float


class CountingCache:
    """Cost-accounting-only cache for pure simulations (no data values).

    Tracks, per stream, how many of the newest items are held; charges for
    the missing ones. This is the cache the analytic evaluators assume.
    """

    def __init__(self, costs: Mapping[str, float]) -> None:
        self.costs = dict(costs)
        self._held: dict[str, int] = {}
        self.charged = 0.0
        self.fetch_counts: dict[str, int] = {}

    def items_cached(self, stream: str) -> int:
        return self._held.get(stream, 0)

    def fetch_window(self, stream: str, count: int) -> FetchResult:
        if count < 1:
            raise StreamError(f"window must be >= 1 item, got {count}")
        if stream not in self.costs:
            raise StreamError(f"unknown stream {stream!r}")
        have = self._held.get(stream, 0)
        missing = max(0, count - have)
        cost = missing * self.costs[stream]
        if missing:
            self._held[stream] = count
            self.fetch_counts[stream] = self.fetch_counts.get(stream, 0) + missing
        self.charged += cost
        return FetchResult(values=None, fetched_items=missing, cost=cost)

    def clear(self) -> None:
        """Drop all items (e.g. between independent query evaluations)."""
        self._held.clear()

    def reset_charges(self) -> None:
        self.charged = 0.0
        self.fetch_counts.clear()


class DataItemCache:
    """Pull-model cache over real (simulated) data sources.

    Parameters
    ----------
    sources:
        Stream name -> :class:`Source` tape.
    costs:
        Stream name -> cost per item, ``c(S_k)``.
    now:
        Initial device time = number of items each source has already
        produced. Must be at least the largest window a query will ask for.
    """

    def __init__(
        self,
        sources: Mapping[str, Source],
        costs: Mapping[str, float],
        *,
        now: int = 64,
    ) -> None:
        missing = set(sources) - set(costs)
        if missing:
            raise StreamError(f"no cost configured for streams {sorted(missing)!r}")
        self.sources = dict(sources)
        self.costs = dict(costs)
        if now < 0:
            raise StreamError(f"now must be >= 0, got {now}")
        self.now = now
        self._store: dict[str, dict[int, float]] = {name: {} for name in sources}
        self.charged = 0.0
        self.fetch_counts: dict[str, int] = {}

    def items_cached(self, stream: str) -> int:
        """Length of the contiguous run of newest items currently held."""
        store = self._store.get(stream)
        if not store:
            return 0
        count = 0
        tau = self.now - 1
        while tau in store:
            count += 1
            tau -= 1
        return count

    def fetch_window(self, stream: str, count: int) -> FetchResult:
        """Values of items ``1..count`` (newest last in the array), charging misses."""
        if count < 1:
            raise StreamError(f"window must be >= 1 item, got {count}")
        source = self.sources.get(stream)
        if source is None:
            raise StreamError(f"unknown stream {stream!r}")
        if count > self.now:
            raise StreamError(
                f"stream {stream!r} has only produced {self.now} items; window {count} too large"
            )
        store = self._store[stream]
        fetched = 0
        cost_per_item = self.costs[stream]
        values = np.empty(count)
        for offset, tau in enumerate(range(self.now - count, self.now)):
            if tau not in store:
                store[tau] = source.value_at(tau)
                fetched += 1
            values[offset] = store[tau]
        cost = fetched * cost_per_item
        self.charged += cost
        if fetched:
            self.fetch_counts[stream] = self.fetch_counts.get(stream, 0) + fetched
        return FetchResult(values=values, fetched_items=fetched, cost=cost)

    def advance(self, steps: int = 1, *, max_windows: Mapping[str, int] | None = None) -> None:
        """Move time forward and evict items older than each stream's window.

        ``max_windows[stream]`` is the largest window any leaf applies to the
        stream (the paper's relevance horizon); omitted streams keep
        everything (no eviction).
        """
        if steps < 0:
            raise StreamError(f"cannot advance by {steps} steps")
        self.now += steps
        if max_windows:
            for stream, window in max_windows.items():
                store = self._store.get(stream)
                if store is None:
                    continue
                horizon = self.now - window
                stale = [tau for tau in store if tau < horizon]
                for tau in stale:
                    del store[tau]

    def retain_relevant(self, max_windows: Mapping[str, int]) -> None:
        """Re-apply the relevance rule after the serving population changed.

        Paper §I: an item is relevant only while it is within the maximum
        window *some query* applies to its stream. When a query departs, its
        streams' windows may shrink — or vanish entirely — so items that
        were relevant a moment ago no longer are: drop items older than each
        stream's new horizon, and every item of streams no resident query
        windows at all. Besides matching the paper's semantics (and bounding
        memory on a long-running server), this is what keeps residual cache
        warmth *placement-independent*: a departed query leaves the same
        (empty) trace behind on a shard as on the unsharded server, so later
        admissions cost the same wherever they land.
        """
        for stream, store in self._store.items():
            window = max_windows.get(stream)
            if window is None:
                store.clear()
                continue
            horizon = self.now - window
            stale = [tau for tau in store if tau < horizon]
            for tau in stale:
                del store[tau]

    def export_stream_state(
        self, streams
    ) -> tuple[int, dict[str, dict[int, float]]]:
        """Snapshot this cache's clock and held items for ``streams``.

        Taken by shard migration *before* the movers are lifted out (a
        departing population purges its streams' items under the relevance
        rule); the snapshot is handed to the destination's
        :meth:`adopt_stream_state` once the movers are registered there.
        """
        return self.now, {
            stream: dict(self._store.get(stream, {})) for stream in streams
        }

    def adopt_stream_state(
        self, donor_now: int, stores: Mapping[str, Mapping[int, float]]
    ) -> None:
        """Transplant a donor cache's held items into this cache.

        Shard migration support: when queries move between serving shards,
        the destination adopts the source cache's state for the moved
        streams, so the movers' next fetch pays exactly the increment they
        would have paid had they never moved (no artificial cold-start
        spend). Items already held here win — they are the same source tape
        values anyway.

        The two caches may disagree on device time. If this cache is behind
        and holds nothing yet (a freshly spawned or never-batched shard), its
        clock is fast-forwarded to the donor's; otherwise item indices are
        translated by the clock delta, preserving each item's *recency* —
        the quantity the cost model charges by — at the expense of
        value-level fidelity, which only matters to predicate oracles and is
        exact whenever the clocks agree.
        """
        for stream in stores:
            if stream not in self.sources:
                raise StreamError(f"unknown stream {stream!r}")
        if donor_now > self.now and not any(self._store.values()):
            self.now = donor_now
        delta = self.now - donor_now
        for stream, source_store in stores.items():
            if not source_store:
                continue
            store = self._store.setdefault(stream, {})
            for tau, value in source_store.items():
                shifted = tau + delta
                if 0 <= shifted < self.now and shifted not in store:
                    store[shifted] = value

    def clear(self) -> None:
        for store in self._store.values():
            store.clear()

    def reset_charges(self) -> None:
        self.charged = 0.0
        self.fetch_counts.clear()
