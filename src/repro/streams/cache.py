"""The device's data-item memory — the heart of the *shared* cost model.

Paper §I: "The device that processes the query acquires data items from
streams and holds each data item in memory until that data item is no longer
relevant. A data item from a stream is no longer relevant when it is older
than the maximum time-window used for that stream in the query."

:class:`DataItemCache` implements exactly that pull model over
:class:`~repro.streams.sources.Source` tapes:

* time is discrete; at device time ``now``, the newest available item of a
  stream is the one produced at absolute index ``now - 1``, and "the last
  ``d`` items" are absolute indices ``now - d .. now - 1``;
* :meth:`fetch_window` returns those ``d`` values, *charging only for items
  not already cached* — this is what makes later same-stream leaves cheap;
* :meth:`advance` moves time forward (new items get produced by the sources)
  and evicts items older than each stream's maximum relevant window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import StreamError
from repro.streams.sources import Source

__all__ = ["DataItemCache", "CountingCache", "FetchResult"]


@dataclass(frozen=True, slots=True)
class FetchResult:
    """Outcome of one window fetch."""

    values: np.ndarray | None
    fetched_items: int
    cost: float


class CountingCache:
    """Cost-accounting-only cache for pure simulations (no data values).

    Tracks, per stream, how many of the newest items are held; charges for
    the missing ones. This is the cache the analytic evaluators assume.
    """

    def __init__(self, costs: Mapping[str, float]) -> None:
        self.costs = dict(costs)
        self._held: dict[str, int] = {}
        self.charged = 0.0
        self.fetch_counts: dict[str, int] = {}

    def items_cached(self, stream: str) -> int:
        return self._held.get(stream, 0)

    def fetch_window(self, stream: str, count: int) -> FetchResult:
        if count < 1:
            raise StreamError(f"window must be >= 1 item, got {count}")
        if stream not in self.costs:
            raise StreamError(f"unknown stream {stream!r}")
        have = self._held.get(stream, 0)
        missing = max(0, count - have)
        cost = missing * self.costs[stream]
        if missing:
            self._held[stream] = count
            self.fetch_counts[stream] = self.fetch_counts.get(stream, 0) + missing
        self.charged += cost
        return FetchResult(values=None, fetched_items=missing, cost=cost)

    def clear(self) -> None:
        """Drop all items (e.g. between independent query evaluations)."""
        self._held.clear()

    def reset_charges(self) -> None:
        self.charged = 0.0
        self.fetch_counts.clear()


class DataItemCache:
    """Pull-model cache over real (simulated) data sources.

    Parameters
    ----------
    sources:
        Stream name -> :class:`Source` tape.
    costs:
        Stream name -> cost per item, ``c(S_k)``.
    now:
        Initial device time = number of items each source has already
        produced. Must be at least the largest window a query will ask for.
    """

    def __init__(
        self,
        sources: Mapping[str, Source],
        costs: Mapping[str, float],
        *,
        now: int = 64,
    ) -> None:
        missing = set(sources) - set(costs)
        if missing:
            raise StreamError(f"no cost configured for streams {sorted(missing)!r}")
        self.sources = dict(sources)
        self.costs = dict(costs)
        if now < 0:
            raise StreamError(f"now must be >= 0, got {now}")
        self.now = now
        self._store: dict[str, dict[int, float]] = {name: {} for name in sources}
        self.charged = 0.0
        self.fetch_counts: dict[str, int] = {}

    def items_cached(self, stream: str) -> int:
        """Length of the contiguous run of newest items currently held."""
        store = self._store.get(stream)
        if not store:
            return 0
        count = 0
        tau = self.now - 1
        while tau in store:
            count += 1
            tau -= 1
        return count

    def fetch_window(self, stream: str, count: int) -> FetchResult:
        """Values of items ``1..count`` (newest last in the array), charging misses."""
        if count < 1:
            raise StreamError(f"window must be >= 1 item, got {count}")
        source = self.sources.get(stream)
        if source is None:
            raise StreamError(f"unknown stream {stream!r}")
        if count > self.now:
            raise StreamError(
                f"stream {stream!r} has only produced {self.now} items; window {count} too large"
            )
        store = self._store[stream]
        fetched = 0
        cost_per_item = self.costs[stream]
        values = np.empty(count)
        for offset, tau in enumerate(range(self.now - count, self.now)):
            if tau not in store:
                store[tau] = source.value_at(tau)
                fetched += 1
            values[offset] = store[tau]
        cost = fetched * cost_per_item
        self.charged += cost
        if fetched:
            self.fetch_counts[stream] = self.fetch_counts.get(stream, 0) + fetched
        return FetchResult(values=values, fetched_items=fetched, cost=cost)

    def advance(self, steps: int = 1, *, max_windows: Mapping[str, int] | None = None) -> None:
        """Move time forward and evict items older than each stream's window.

        ``max_windows[stream]`` is the largest window any leaf applies to the
        stream (the paper's relevance horizon); omitted streams keep
        everything (no eviction).
        """
        if steps < 0:
            raise StreamError(f"cannot advance by {steps} steps")
        self.now += steps
        if max_windows:
            for stream, window in max_windows.items():
                store = self._store.get(stream)
                if store is None:
                    continue
                horizon = self.now - window
                stale = [tau for tau in store if tau < horizon]
                for tau in stale:
                    del store[tau]

    def clear(self) -> None:
        for store in self._store.values():
            store.clear()

    def reset_charges(self) -> None:
        self.charged = 0.0
        self.fetch_counts.clear()
