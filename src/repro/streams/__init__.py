"""Sensor-stream substrate: specs, sources, cost models, cache, traces."""

from repro.streams.cache import CountingCache, DataItemCache, FetchResult
from repro.streams.drift import DriftingSource, DriftSchedule, RampDrift, StepDrift
from repro.streams.cost_models import (
    BLUETOOTH_LE,
    CELLULAR,
    WIFI,
    ZIGBEE,
    CostModel,
    EnergyCost,
    Medium,
    TableCost,
    UniformCost,
    cost_table,
)
from repro.streams.failures import DropoutSource, FailingSource
from repro.streams.registry import StreamRegistry
from repro.streams.sources import (
    ConstantSource,
    GaussianSource,
    MarkovChainSource,
    PeriodicSource,
    RandomWalkSource,
    ReplaySource,
    Source,
    UniformSource,
)
from repro.streams.stream import StreamSpec
from repro.streams.traces import LeafTrace, TraceRecorder, estimate_probability

__all__ = [
    "StreamSpec",
    "StreamRegistry",
    "Source",
    "UniformSource",
    "GaussianSource",
    "RandomWalkSource",
    "PeriodicSource",
    "MarkovChainSource",
    "ConstantSource",
    "ReplaySource",
    "DropoutSource",
    "FailingSource",
    "DriftSchedule",
    "StepDrift",
    "RampDrift",
    "DriftingSource",
    "DataItemCache",
    "CountingCache",
    "FetchResult",
    "CostModel",
    "UniformCost",
    "TableCost",
    "EnergyCost",
    "Medium",
    "BLUETOOTH_LE",
    "WIFI",
    "ZIGBEE",
    "CELLULAR",
    "cost_table",
    "TraceRecorder",
    "LeafTrace",
    "estimate_probability",
]
