"""The cluster's front door: route each admission to its best shard.

Routing mirrors the partitioner's objective online: a new query should land
where its streams already are. The router scores every shard by the overlap
between the query's stream weight vector and the shard's signature
(``sum_s min(w_query[s], signature[s])`` — the per-round spend the query can
share with residents), picks the best-overlapping shard, and falls back to
the least-loaded shard when no shard holds any of the query's streams (a
cold stream group starts wherever there is room). Capacity-full shards are
skipped; ties break to the lighter, then lower-numbered shard, so routing is
deterministic.

:meth:`ShardRouter.route_group` scores a whole migration group (a drained
shard's stream-disjoint component) the same way, so elastic moves and
admissions share one placement objective.

Signatures are snapshotted into a per-shard cache so admission storms don't
re-copy every shard's signature per decision; any structural change to a
shard's population (admission, departure, migration, rebalance) must drop
its entry via :meth:`ShardRouter.invalidate_signatures` — a stale snapshot
routes queries to shards whose streams have moved away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.cluster.partition import TreeLike, stream_weight_vector
from repro.cluster.shard import ShardServer
from repro.errors import AdmissionError

__all__ = ["RoutingDecision", "ShardRouter"]


@dataclass(frozen=True)
class RoutingDecision:
    """Where one admission (or migration group) went and why."""

    query: str
    shard_id: int
    overlap: float
    #: "overlap" when the query shared streams with the chosen shard,
    #: "least-loaded" when no shard held any of its streams.
    reason: str


@dataclass
class ShardRouter:
    """Stateless-per-decision scorer over a cluster's live shards."""

    costs: Mapping[str, float]
    max_shard_queries: int | None = None
    decisions: list[RoutingDecision] = field(default_factory=list)
    #: shard id -> snapshotted signature, refreshed lazily on first use and
    #: dropped whenever the shard's population changes.
    _signatures: dict[int, dict[str, float]] = field(
        default_factory=dict, repr=False
    )

    def _signature(self, shard: ShardServer) -> dict[str, float]:
        cached = self._signatures.get(shard.shard_id)
        if cached is None:
            cached = dict(shard.signature)
            self._signatures[shard.shard_id] = cached
        return cached

    def invalidate_signatures(self, shard_ids: Iterable[int] | None = None) -> None:
        """Drop cached signatures (all of them when ``shard_ids`` is None).

        Must be called whenever shard populations change behind the router's
        back — bulk registration, departures, migrations, rebalances —
        otherwise stale snapshots keep routing to shards whose streams left.
        """
        if shard_ids is None:
            self._signatures.clear()
        else:
            for shard_id in shard_ids:
                self._signatures.pop(shard_id, None)

    def route(
        self, name: str, tree: TreeLike, shards: Sequence[ShardServer]
    ) -> RoutingDecision:
        """Pick a shard for ``name`` (pure — no state is recorded).

        The caller logs the decision with :meth:`record` once the admission
        actually succeeds, so a rejected registration never skews the
        routing statistics.
        """
        return self.route_group(
            name, stream_weight_vector(tree, self.costs), shards
        )

    def route_group(
        self,
        label: str,
        weights: Mapping[str, float],
        shards: Sequence[ShardServer],
        *,
        group_size: int = 1,
    ) -> RoutingDecision:
        """Pick a shard for a stream weight vector covering ``group_size``
        queries (a single admission, or a whole migration group moving as a
        unit). Pure: records nothing.

        Raises :class:`~repro.errors.AdmissionError` when no shard exists or
        none has capacity for the whole group.
        """
        if not shards:
            raise AdmissionError("cluster has no shards to route to")
        if group_size < 1:
            raise AdmissionError(f"group size must be >= 1, got {group_size}")
        best_id: int | None = None
        best_key: tuple[float, int, int] | None = None
        for shard in shards:
            if (
                self.max_shard_queries is not None
                and len(shard) + group_size > self.max_shard_queries
            ):
                continue
            signature = self._signature(shard)
            overlap = sum(
                min(weight, signature.get(stream, 0.0))
                for stream, weight in weights.items()
            )
            # Maximize overlap, then prefer the lighter, lower-numbered shard.
            key = (-overlap, len(shard), shard.shard_id)
            if best_key is None or key < best_key:
                best_key = key
                best_id = shard.shard_id
        if best_id is None:
            raise AdmissionError(
                f"all {len(shards)} shards are at capacity "
                f"({self.max_shard_queries} queries; group of {group_size} "
                f"would not fit anywhere)"
            )
        assert best_key is not None
        overlap = -best_key[0]
        return RoutingDecision(
            query=label,
            shard_id=best_id,
            overlap=overlap,
            reason="overlap" if overlap > 0.0 else "least-loaded",
        )

    def record(self, decision: RoutingDecision) -> None:
        """Log a decision whose admission went through.

        The admitted shard's signature just grew, so its snapshot is dropped
        (the other shards were not touched by this admission).
        """
        self.decisions.append(decision)
        self._signatures.pop(decision.shard_id, None)

    @property
    def overlap_hits(self) -> int:
        """Admissions that found their streams already resident somewhere."""
        return sum(1 for d in self.decisions if d.reason == "overlap")

    @property
    def overlap_hit_rate(self) -> float:
        return self.overlap_hits / len(self.decisions) if self.decisions else 0.0
