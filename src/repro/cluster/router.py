"""The cluster's front door: route each admission to its best shard.

Routing mirrors the partitioner's objective online: a new query should land
where its streams already are. The router scores every shard by the overlap
between the query's stream weight vector and the shard's signature
(``sum_s min(w_query[s], signature[s])`` — the per-round spend the query can
share with residents), picks the best-overlapping shard, and falls back to
the least-loaded shard when no shard holds any of the query's streams (a
cold stream group starts wherever there is room). Capacity-full shards are
skipped; ties break to the lighter, then lower-numbered shard, so routing is
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cluster.partition import TreeLike, stream_weight_vector
from repro.cluster.shard import ShardServer
from repro.errors import AdmissionError

__all__ = ["RoutingDecision", "ShardRouter"]


@dataclass(frozen=True)
class RoutingDecision:
    """Where one admission went and why."""

    query: str
    shard_id: int
    overlap: float
    #: "overlap" when the query shared streams with the chosen shard,
    #: "least-loaded" when no shard held any of its streams.
    reason: str


@dataclass
class ShardRouter:
    """Stateless-per-decision scorer over a cluster's live shards."""

    costs: Mapping[str, float]
    max_shard_queries: int | None = None
    decisions: list[RoutingDecision] = field(default_factory=list)

    def route(
        self, name: str, tree: TreeLike, shards: Sequence[ShardServer]
    ) -> RoutingDecision:
        """Pick a shard for ``name`` (pure — no state is recorded).

        The caller logs the decision with :meth:`record` once the admission
        actually succeeds, so a rejected registration never skews the
        routing statistics.
        """
        if not shards:
            raise AdmissionError("cluster has no shards to route to")
        weights = stream_weight_vector(tree, self.costs)
        best_id: int | None = None
        best_key: tuple[float, int, int] | None = None
        for shard in shards:
            if (
                self.max_shard_queries is not None
                and len(shard) >= self.max_shard_queries
            ):
                continue
            overlap = sum(
                min(weight, shard.signature.get(stream, 0.0))
                for stream, weight in weights.items()
            )
            # Maximize overlap, then prefer the lighter, lower-numbered shard.
            key = (-overlap, len(shard), shard.shard_id)
            if best_key is None or key < best_key:
                best_key = key
                best_id = shard.shard_id
        if best_id is None:
            raise AdmissionError(
                f"all {len(shards)} shards are at capacity "
                f"({self.max_shard_queries} queries)"
            )
        assert best_key is not None
        overlap = -best_key[0]
        return RoutingDecision(
            query=name,
            shard_id=best_id,
            overlap=overlap,
            reason="overlap" if overlap > 0.0 else "least-loaded",
        )

    def record(self, decision: RoutingDecision) -> None:
        """Log a decision whose admission went through."""
        self.decisions.append(decision)

    @property
    def overlap_hits(self) -> int:
        """Admissions that found their streams already resident somewhere."""
        return sum(1 for d in self.decisions if d.reason == "overlap")

    @property
    def overlap_hit_rate(self) -> float:
        return self.overlap_hits / len(self.decisions) if self.decisions else 0.0
