"""Stream-overlap partitioning of a query population into serving shards.

The shared-stream cost model only pays when queries that touch the *same*
streams are served together; queries with disjoint stream sets gain nothing
from sharing a cache — they only inflate the server's global plan merge.
This module builds the query<->stream bipartite overlap graph of a
population and clusters it into at most ``k`` shards:

* two queries overlap with weight ``sum_s min(w_a[s], w_b[s])`` where
  ``w_q[s]`` is the per-round acquisition spend query ``q`` can put on
  stream ``s`` (its largest window on ``s`` times the per-item cost) — the
  cost one of them saves per round when the other pays the window first;
* connected components of the overlap graph are the natural clusters: a
  component never benefits from co-residence with another, so splitting
  *across* components is free while splitting *within* one loses sharing;
* components are packed onto shards longest-processing-time-first (balance),
  optionally refined by label-propagation sweeps when cross-component noise
  (cut edges) makes the initial packing improvable, and oversized components
  are only split when an explicit ``max_shard_queries`` capacity demands it.

:func:`partition_report` explains what a partition costs: the pairwise
overlap weight kept inside shards, the weight cut by shard boundaries, and
the duplicated per-round acquisition spend (a stream windowed by several
shards is paid once per shard instead of once per device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence, Union

import numpy as np

from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.errors import StreamError

if TYPE_CHECKING:
    from repro.service.substore import SubtreeStore

__all__ = [
    "OverlapGraph",
    "Partition",
    "PartitionReport",
    "build_overlap_graph",
    "pack_pieces",
    "partition_by_overlap",
    "partition_report",
    "random_partition",
    "shard_split_pieces",
    "stream_weight_vector",
]

TreeLike = Union[AndTree, DnfTree, QueryTree]


def stream_weight_vector(tree: TreeLike, costs: Mapping[str, float]) -> dict[str, float]:
    """Per-stream acquisition weight of one query: max window x per-item cost.

    This is the most a single round can spend on the stream for this query —
    exactly the spend another co-resident query can save by paying first.
    """
    weights: dict[str, float] = {}
    for leaf in tree.leaves:
        weight = leaf.items * costs.get(leaf.stream, 1.0)
        if weight > weights.get(leaf.stream, 0.0):
            weights[leaf.stream] = weight
    return weights


@dataclass(frozen=True)
class OverlapGraph:
    """The query<->stream bipartite graph of a population, with weights."""

    names: tuple[str, ...]
    #: query name -> stream -> acquisition weight (max window x item cost).
    weights: Mapping[str, Mapping[str, float]]

    def streams_of(self, name: str) -> frozenset[str]:
        return frozenset(self.weights[name])

    def overlap(self, a: str, b: str) -> float:
        """Shared-stream weight between two queries (0.0 when disjoint).

        Pairs are memoized: the partitioner's component, label-propagation
        and cut-scoring passes all revisit the same pairs many times.
        """
        cache: dict[tuple[str, str], float] = self.__dict__.setdefault(
            "_overlap_cache", {}
        )
        pair = (a, b) if a <= b else (b, a)
        value = cache.get(pair)
        if value is None:
            wa, wb = self.weights[a], self.weights[b]
            if len(wb) < len(wa):
                wa, wb = wb, wa
            value = sum(min(w, wb[s]) for s, w in wa.items() if s in wb)
            cache[pair] = value
        return value

    def queries_by_stream(self) -> dict[str, list[str]]:
        """Stream -> queries windowing it (computed once, cached)."""
        cached = self.__dict__.get("_by_stream")
        if cached is None:
            by_stream: dict[str, list[str]] = {}
            for name in self.names:
                for stream in self.weights[name]:
                    by_stream.setdefault(stream, []).append(name)
            object.__setattr__(self, "_by_stream", by_stream)
            cached = by_stream
        return cached

    def overlapping_pairs(
        self, members: "set[str] | None" = None
    ) -> "Iterator[tuple[str, str]]":
        """Every unordered query pair sharing a stream, yielded once.

        Only pairs with a common stream can overlap, so consumers walking
        these pairs instead of the full n^2 grid stay near-linear on sparse
        populations. ``members`` restricts to pairs inside one set.
        """
        seen: set[tuple[str, str]] = set()
        for stream_members in self.queries_by_stream().values():
            inside = (
                stream_members
                if members is None
                else [name for name in stream_members if name in members]
            )
            for i, a in enumerate(inside):
                for b in inside[i + 1 :]:
                    pair = (a, b) if a <= b else (b, a)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair

    def neighbour_map(
        self, members: "set[str] | None" = None
    ) -> dict[str, set[str]]:
        """Query -> stream-sharing neighbours (optionally within ``members``)."""
        scope = self.names if members is None else [n for n in self.names if n in members]
        neighbours: dict[str, set[str]] = {name: set() for name in scope}
        for a, b in self.overlapping_pairs(members):
            neighbours[a].add(b)
            neighbours[b].add(a)
        return neighbours

    def components(self) -> list[list[str]]:
        """Connected components of the overlap graph, in first-seen order.

        Queries are connected when they share at least one stream; a
        population with zero overlap yields one singleton per query.
        """
        parent = {name: name for name in self.names}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for members in self.queries_by_stream().values():
            first = members[0]
            for other in members[1:]:
                ra, rb = find(first), find(other)
                if ra != rb:
                    parent[rb] = ra
        grouped: dict[str, list[str]] = {}
        for name in self.names:
            grouped.setdefault(find(name), []).append(name)
        return list(grouped.values())


def build_overlap_graph(
    population: Sequence[tuple[str, TreeLike]],
    costs: Mapping[str, float],
    *,
    store: "SubtreeStore | None" = None,
) -> OverlapGraph:
    """Overlap graph of ``population`` under the registry's cost table.

    With ``store`` (a :class:`~repro.service.substore.SubtreeStore`), weight
    vectors come from the store's per-canonical-identity memo: a population
    of isomorphs (or re-partitions of an already-interned population) pays
    the leaf walk once per *distinct shape* instead of once per query. The
    values are identical to :func:`stream_weight_vector` — weights depend
    only on streams, window sizes and costs, all invariant under
    canonicalization.
    """
    if not population:
        raise StreamError("cannot build an overlap graph of an empty population")
    names: list[str] = []
    weights: dict[str, dict[str, float]] = {}
    for name, tree in population:
        if name in weights:
            raise StreamError(f"duplicate query name {name!r} in population")
        names.append(name)
        if store is not None:
            weights[name] = store.stream_weights(tree, costs)
        else:
            weights[name] = stream_weight_vector(tree, costs)
    return OverlapGraph(names=tuple(names), weights=weights)


@dataclass(frozen=True)
class PartitionReport:
    """What a partition keeps, cuts and duplicates."""

    n_queries: int
    n_shards: int
    shard_sizes: tuple[int, ...]
    #: Pairwise overlap weight between queries placed in the same shard.
    intra_weight: float
    #: Pairwise overlap weight between queries split across shards.
    cut_weight: float
    #: Extra per-round acquisition spend vs one device: a stream windowed by
    #: several shards is paid once per shard instead of once overall.
    duplicated_stream_cost: float
    #: Largest shard size over the ideal (n_queries / n_shards); 1.0 = even.
    balance: float
    method: str

    @property
    def kept_fraction(self) -> float:
        """Fraction of the population's total overlap weight kept intra-shard."""
        total = self.intra_weight + self.cut_weight
        return self.intra_weight / total if total > 0 else 1.0

    def describe(self) -> str:
        sizes = ",".join(str(s) for s in self.shard_sizes)
        return (
            f"partition[{self.method}]: {self.n_queries} queries -> "
            f"{self.n_shards} shards (sizes {sizes}, balance {self.balance:.2f})\n"
            f"  overlap weight kept {self.intra_weight:.6g} / cut {self.cut_weight:.6g}"
            f" ({self.kept_fraction:.1%} kept)\n"
            f"  duplicated per-round stream spend {self.duplicated_stream_cost:.6g}"
        )

    def to_record(self) -> dict:
        """JSON-ready summary for perf records."""
        return {
            "method": self.method,
            "n_queries": self.n_queries,
            "n_shards": self.n_shards,
            "shard_sizes": list(self.shard_sizes),
            "intra_weight": self.intra_weight,
            "cut_weight": self.cut_weight,
            "kept_fraction": self.kept_fraction,
            "duplicated_stream_cost": self.duplicated_stream_cost,
            "balance": self.balance,
        }


@dataclass(frozen=True)
class Partition:
    """An assignment of every query to exactly one shard."""

    shards: tuple[tuple[str, ...], ...]
    report: PartitionReport

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self) -> dict[str, int]:
        return {
            name: index for index, shard in enumerate(self.shards) for name in shard
        }


def partition_report(
    graph: OverlapGraph, shards: Sequence[Sequence[str]], *, method: str
) -> PartitionReport:
    """Score a shard assignment: kept vs cut overlap, duplicated stream spend."""
    assignment: dict[str, int] = {}
    for index, shard in enumerate(shards):
        for name in shard:
            if name in assignment:
                raise StreamError(f"query {name!r} assigned to two shards")
            assignment[name] = index
    missing = set(graph.names) - set(assignment)
    if missing:
        raise StreamError(f"partition misses queries {sorted(missing)!r}")
    intra = cut = 0.0
    for a, b in graph.overlapping_pairs():
        weight = graph.overlap(a, b)
        if assignment[a] == assignment[b]:
            intra += weight
        else:
            cut += weight
    # Duplicated acquisition: per stream, each shard that windows it pays its
    # own shard-max window; one device would pay the global max once.
    duplicated = 0.0
    for stream, members in graph.queries_by_stream().items():
        shard_max: dict[int, float] = {}
        for name in members:
            weight = graph.weights[name][stream]
            shard = assignment[name]
            if weight > shard_max.get(shard, 0.0):
                shard_max[shard] = weight
        duplicated += sum(shard_max.values()) - max(shard_max.values())
    sizes = tuple(len(shard) for shard in shards)
    n_shards = len(shards)
    ideal = len(graph.names) / n_shards if n_shards else 0.0
    return PartitionReport(
        n_queries=len(graph.names),
        n_shards=n_shards,
        shard_sizes=sizes,
        intra_weight=intra,
        cut_weight=cut,
        duplicated_stream_cost=duplicated,
        balance=max(sizes) / ideal if ideal else 1.0,
        method=method,
    )


def _pair_weight(graph: OverlapGraph, names: Sequence[str]) -> float:
    """Total pairwise overlap weight inside ``names``."""
    members = set(names)
    return sum(graph.overlap(a, b) for a, b in graph.overlapping_pairs(members))


def _community_split(
    graph: OverlapGraph, component: list[str], *, sweeps: int = 6
) -> list[list[str]]:
    """Classic async label propagation inside one connected component.

    Every query starts as its own community and repeatedly adopts the label
    with the strongest weighted pull among its neighbours (ties to the
    smallest label, deterministic order). Planted clusters glued by noise
    edges each collapse onto one label; a uniform clique collapses onto a
    *single* label — returning one piece, which the caller reads as
    "unsplittable dense structure".
    """
    neighbours = {
        name: sorted(peers)
        for name, peers in graph.neighbour_map(set(component)).items()
    }
    labels = {name: index for index, name in enumerate(component)}
    for _ in range(max(1, sweeps)):
        moved = False
        for name in component:
            pull: dict[int, float] = {}
            for other in neighbours[name]:
                label = labels[other]
                pull[label] = pull.get(label, 0.0) + graph.overlap(name, other)
            if not pull:
                continue
            best = min(pull, key=lambda label: (-pull[label], label))
            if best != labels[name]:
                labels[name] = best
                moved = True
        if not moved:
            break
    grouped: dict[int, list[str]] = {}
    for name in component:
        grouped.setdefault(labels[name], []).append(name)
    return list(grouped.values())


def _split_component(
    graph: OverlapGraph, component: list[str], cap: int
) -> list[list[str]]:
    """Split an oversized component into pieces of at most ``cap`` queries.

    Greedy growth: seed each piece with the unassigned query of highest
    total overlap inside the component (the hub), then repeatedly attach the
    unassigned member with the strongest overlap to the piece so far —
    keeping dense sub-clusters together while honoring the capacity.
    """
    remaining = list(component)
    pieces: list[list[str]] = []
    while remaining:
        if len(remaining) <= cap:
            pieces.append(remaining)
            break
        hub = max(
            remaining,
            key=lambda q: sum(graph.overlap(q, other) for other in remaining if other != q),
        )
        piece = [hub]
        remaining.remove(hub)
        attached = {s: w for s, w in graph.weights[hub].items()}
        while len(piece) < cap and remaining:
            best = max(
                remaining,
                key=lambda q: sum(
                    min(w, attached.get(s, 0.0))
                    for s, w in graph.weights[q].items()
                ),
            )
            piece.append(best)
            remaining.remove(best)
            for s, w in graph.weights[best].items():
                if w > attached.get(s, 0.0):
                    attached[s] = w
        pieces.append(piece)
    return pieces


def _label_propagation_refine(
    graph: OverlapGraph,
    shards: list[list[str]],
    *,
    max_shard_queries: int | None,
    sweeps: int,
) -> list[list[str]]:
    """Greedy label-propagation: move a query to the shard it overlaps most.

    Deterministic sweeps in population order; a move must strictly increase
    the query's intra-shard overlap and respect the capacity. Useful when
    cut edges (cross-component noise) make the component packing improvable.
    """
    assignment = {
        name: index for index, shard in enumerate(shards) for name in shard
    }
    # Only the assigned queries participate: the pass also refines trial
    # splits of a single component, where the rest of the graph is absent.
    covered = [name for name in graph.names if name in assignment]
    neighbours = graph.neighbour_map(set(covered))
    sizes = [len(shard) for shard in shards]
    for _ in range(max(0, sweeps)):
        moved = False
        for name in covered:
            current = assignment[name]
            pull: dict[int, float] = {}
            for other in neighbours[name]:
                shard = assignment[other]
                pull[shard] = pull.get(shard, 0.0) + graph.overlap(name, other)
            best_shard, best_pull = current, pull.get(current, 0.0)
            for shard, weight in sorted(pull.items()):
                if shard == current:
                    continue
                if max_shard_queries is not None and sizes[shard] >= max_shard_queries:
                    continue
                if weight > best_pull:
                    best_shard, best_pull = shard, weight
            if best_shard != current:
                assignment[name] = best_shard
                sizes[current] -= 1
                sizes[best_shard] += 1
                moved = True
        if not moved:
            break
    rebuilt: list[list[str]] = [[] for _ in shards]
    for name in covered:
        rebuilt[assignment[name]].append(name)
    return [shard for shard in rebuilt if shard]


def shard_split_pieces(graph: OverlapGraph, *, allow_cut: bool = False) -> list[list[str]]:
    """The pieces one shard's population divides into, cheapest cut first.

    Connected components of the shard-local overlap graph are the *free*
    split boundaries: no shared stream crosses them, so dividing along them
    changes no query's cost. A single-component (monolithic) population has
    no free boundary; with ``allow_cut`` it is divided along its
    label-propagation communities instead — the partitioner's noise-cut
    structure, which keeps dense sub-clusters whole but does duplicate the
    cut streams' spend. Returns one piece when the population is
    unsplittable under the given policy.
    """
    pieces = graph.components()
    if len(pieces) == 1 and allow_cut:
        pieces = _community_split(graph, pieces[0])
    return pieces


def pack_pieces(pieces: Sequence[Sequence[str]], k: int) -> list[list[str]]:
    """LPT-pack ``pieces`` into at most ``k`` balanced groups (largest first
    onto the lightest group; deterministic, stable for equal sizes)."""
    if k < 1:
        raise StreamError(f"need at least one group, got {k}")
    groups: list[list[str]] = [[] for _ in range(min(k, len(pieces)))]
    for piece in sorted(pieces, key=len, reverse=True):
        lightest = min(range(len(groups)), key=lambda i: (len(groups[i]), i))
        groups[lightest].extend(piece)
    return [group for group in groups if group]


def partition_by_overlap(
    population: Sequence[tuple[str, TreeLike]],
    k: int,
    costs: Mapping[str, float],
    *,
    max_shard_queries: int | None = None,
    refine_sweeps: int = 2,
    min_split_keep: float = 0.6,
    graph: OverlapGraph | None = None,
) -> Partition:
    """Cluster ``population`` into at most ``k`` shards by stream overlap.

    Connected overlap components are the starting clusters. A *dense*
    component is never split for width — a fully-overlapping population
    yields one shard no matter how large ``k`` is, and ``k`` larger than the
    number of clusters yields one shard per cluster. But a component held
    together only by thin cross-traffic is a different matter: when fewer
    components than shards exist, oversized components are trial-split
    (greedy hub growth + label-propagation refinement) and the split is
    *kept only if* it preserves at least ``min_split_keep`` of the
    component's internal overlap weight — planted clusters glued by noise
    edges pass (they keep most of their weight), uniform cliques fail (any
    width-``j`` split of a clique keeps only ~1/j). ``max_shard_queries``
    (a per-shard admission capacity) additionally forces splits regardless
    of cut cost. Components are packed onto shards LPT-style (largest first
    onto the lightest shard), then refined with ``refine_sweeps``
    label-propagation passes. Callers that already built the population's
    :class:`OverlapGraph` pass it via ``graph`` to skip the rebuild.
    """
    if k < 1:
        raise StreamError(f"need at least one shard, got {k}")
    if max_shard_queries is not None and max_shard_queries < 1:
        raise StreamError(f"max_shard_queries must be >= 1, got {max_shard_queries}")
    if graph is None:
        graph = build_overlap_graph(population, costs)
    if max_shard_queries is not None and len(graph.names) > k * max_shard_queries:
        raise StreamError(
            f"{len(graph.names)} queries cannot fit {k} shards of capacity "
            f"{max_shard_queries}"
        )
    pieces: list[list[str]] = []
    for component in graph.components():
        if max_shard_queries is not None and len(component) > max_shard_queries:
            pieces.extend(_split_component(graph, component, max_shard_queries))
        else:
            pieces.append(component)
    # Noise-cut pass: with fewer pieces than shards, trial-split oversized
    # pieces by community detection and keep only cheap cuts (weak glue,
    # not dense structure).
    target = -(-len(graph.names) // k)  # ceil
    while len(pieces) < k:
        oversized = [piece for piece in pieces if len(piece) > target]
        if not oversized:
            break
        largest = max(oversized, key=len)
        sub = _community_split(graph, largest)
        if len(sub) <= 1:
            break
        internal = _pair_weight(graph, largest)
        kept = sum(_pair_weight(graph, piece) for piece in sub)
        if internal > 0 and kept < min_split_keep * internal:
            break
        pieces.remove(largest)
        pieces.extend(sub)
    # LPT packing: largest piece first onto the currently lightest shard.
    n_shards = min(k, len(pieces))
    shards: list[list[str]] = [[] for _ in range(n_shards)]
    for piece in sorted(pieces, key=len, reverse=True):
        remaining = list(piece)
        while remaining:
            candidates = sorted(range(n_shards), key=lambda i: (len(shards[i]), i))
            if max_shard_queries is None:
                shards[candidates[0]].extend(remaining)
                break
            whole = next(
                (
                    index
                    for index in candidates
                    if len(shards[index]) + len(remaining) <= max_shard_queries
                ),
                None,
            )
            if whole is not None:
                shards[whole].extend(remaining)
                break
            # No shard fits the whole piece: the capacity forces one more
            # split. Fill the lightest shard and carry the tail on (the
            # upfront n <= k * cap check guarantees space exists).
            lightest = candidates[0]
            space = max_shard_queries - len(shards[lightest])
            shards[lightest].extend(remaining[:space])
            remaining = remaining[space:]
    shards = [shard for shard in shards if shard]
    if refine_sweeps > 0 and len(shards) > 1:
        shards = _label_propagation_refine(
            graph, shards, max_shard_queries=max_shard_queries, sweeps=refine_sweeps
        )
    ordered = {name: i for i, name in enumerate(graph.names)}
    final = tuple(
        tuple(sorted(shard, key=ordered.__getitem__)) for shard in shards
    )
    return Partition(
        shards=final, report=partition_report(graph, final, method="overlap")
    )


def random_partition(
    population: Sequence[tuple[str, TreeLike]],
    k: int,
    costs: Mapping[str, float],
    *,
    seed: int = 0,
) -> Partition:
    """Overlap-blind baseline: shuffle the population, deal round-robin."""
    if k < 1:
        raise StreamError(f"need at least one shard, got {k}")
    graph = build_overlap_graph(population, costs)
    names = list(graph.names)
    np.random.default_rng(seed).shuffle(names)
    n_shards = min(k, len(names))
    shards: list[list[str]] = [[] for _ in range(n_shards)]
    for index, name in enumerate(names):
        shards[index % n_shards].append(name)
    ordered = {name: i for i, name in enumerate(graph.names)}
    final = tuple(
        tuple(sorted(shard, key=ordered.__getitem__)) for shard in shards
    )
    return Partition(
        shards=final, report=partition_report(graph, final, method="random")
    )
