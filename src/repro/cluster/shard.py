"""One shard of a serving cluster: a QueryServer plus shard bookkeeping.

A :class:`ShardServer` owns one :class:`~repro.service.server.QueryServer`
(itself thread-safe behind an internal reentrant lock) and adds the
cluster-level identity the router needs: a stable shard id, the shard's
*stream signature* (per-stream max acquisition weight over its residents,
maintained incrementally on admission), and per-batch wall-clock timing so
the cluster can report where time went.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.core.tree import DnfTree
from repro.engine.executor import ExecutionResult, LeafOracle
from repro.errors import AdmissionError
from repro.service.server import BatchReport, QueryServer, QuerySnapshot, TreeLike
from repro.cluster.partition import stream_weight_vector

__all__ = ["ShardServer"]


class ShardServer:
    """A routed shard: one QueryServer with an id, a signature and timings."""

    def __init__(
        self, shard_id: int, server: QueryServer, costs: Mapping[str, float]
    ) -> None:
        self.shard_id = shard_id
        self.server = server
        self._costs = dict(costs)
        #: stream -> max acquisition weight over resident queries (grows on
        #: admission; rebuilt on deregister so departures do not pin streams).
        self.signature: dict[str, float] = {}
        self.last_batch_seconds: float = 0.0

    def _weights(self, tree: TreeLike) -> Mapping[str, float]:
        """Per-stream weights for ``tree``, through the server's store memo.

        Value-identical to :func:`stream_weight_vector`; the store computes
        it once per canonical identity instead of once per admission.
        """
        store = self.server.substore
        if store is not None:
            return store.stream_weights(tree, self._costs)
        return stream_weight_vector(tree, self._costs)

    # -- population ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.server)

    def __contains__(self, name: str) -> bool:
        return name in self.server

    @property
    def names(self) -> tuple[str, ...]:
        return self.server.registered

    @property
    def streams(self) -> frozenset[str]:
        return frozenset(self.signature)

    def register(
        self,
        name: str,
        tree: TreeLike,
        *,
        oracle: LeafOracle | None = None,
        scheduler: str | None = None,
    ) -> None:
        self.server.register(name, tree, oracle=oracle, scheduler=scheduler)
        for stream, weight in self._weights(tree).items():
            if weight > self.signature.get(stream, 0.0):
                self.signature[stream] = weight

    def deregister(self, name: str) -> None:
        if name not in self.server:
            raise AdmissionError(
                f"query {name!r} is not resident on shard {self.shard_id}"
            )
        self.server.deregister(name)
        self.rebuild_signature()

    # -- migration -------------------------------------------------------

    def admit_migrated(self, snapshot: QuerySnapshot) -> None:
        """Adopt a migrated query verbatim; grows the signature incrementally."""
        self.server.admit_migrated(snapshot)
        for stream, weight in self._weights(snapshot.query.tree).items():
            if weight > self.signature.get(stream, 0.0):
                self.signature[stream] = weight

    def rebuild_signature(self) -> None:
        self.signature = {}
        for name in self.server.registered:
            tree: DnfTree = self.server.query(name).tree
            for stream, weight in self._weights(tree).items():
                if weight > self.signature.get(stream, 0.0):
                    self.signature[stream] = weight

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release shard resources — a no-op for in-process shards.

        Exists so the cluster can treat thread shards and process-mode
        worker proxies (:class:`repro.cluster.worker.ShardWorkerProxy`,
        whose close shuts the worker process down) uniformly.
        """

    # -- execution -------------------------------------------------------

    def step(self) -> dict[str, ExecutionResult]:
        return self.server.step()

    def run_batch(self, rounds: int, *, engine: str = "scalar") -> BatchReport:
        """Timed batch; wall seconds land in :attr:`last_batch_seconds`.

        With telemetry enabled on the underlying server, the batch runs
        inside a ``"shard-batch"`` span and the wall time is also observed
        into the ``repro_shard_batch_seconds{shard=...}`` histogram — the
        per-shard latency distribution the cluster-level report derives its
        timing views from.
        """
        tel = self.server.telemetry
        start = time.perf_counter()
        if tel is not None and tel.enabled:
            with tel.span(
                "shard-batch",
                shard=self.shard_id,
                rounds=rounds,
                queries=len(self.server),
            ) as attrs:
                report = self.server.run_batch(rounds, engine=engine)
                attrs["total_cost"] = report.total_cost
                # Close the timing inside the span so the recorded wall
                # seconds ride the span's attrs (trace analysis reads them
                # without consulting the histogram).
                self.last_batch_seconds = time.perf_counter() - start
                attrs["wall_seconds"] = self.last_batch_seconds
            tel.registry.histogram(
                "repro_shard_batch_seconds", shard=str(self.shard_id)
            ).observe(self.last_batch_seconds)
        else:
            report = self.server.run_batch(rounds, engine=engine)
            self.last_batch_seconds = time.perf_counter() - start
        return report
