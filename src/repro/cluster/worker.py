"""Process-mode shard transport: spawn workers, RPC proxies, shared plan cache.

Thread-mode shards share one address space, so the GIL serializes their
probe loops and a 4-shard batch still runs on one core. This module moves
each shard into its own worker process (``spawn`` start method — fork would
clone the parent's held locks and deadlock; spawn also matches macOS/Windows
and the 3.14 default) and gives the parent a proxy that duck-types
:class:`~repro.cluster.shard.ShardServer`, so :class:`ClusterServer` drives
remote shards through the same call sites as local ones.

Design constraints, in order:

* **Plain-data handoffs.** Everything crossing the pipe is picklable by
  construction: ``QuerySnapshot`` + exported stream state for migrations,
  ``BatchReport``/``ExecutionResult`` for execution, ``MetricsRegistry``
  deltas for telemetry. No shared memory, no file descriptors.
* **Placement- and executor-independent outcomes.** The worker rebuilds its
  shard from a pickled :class:`WorkerConfig` — the stream registry's
  memoized tapes travel with it, and sequential sources extend
  deterministically by seed, so a worker's copy of a tape produces exactly
  the values the parent's (or an unsharded server's) copy would. Oracle
  *instances* are pickled across on admission and migration, carrying their
  consumed RNG state, so outcome streams continue seamlessly.
* **One shared plan cache.** The parent owns the cluster-wide
  :class:`~repro.service.plan_cache.PlanCache`; workers reach it through the
  command channel via :class:`RemotePlanCache` (read-through: lookup, compute
  on miss, publish). A canonical shape still pays its scheduling cost once
  per *cluster*, not once per process — and so does each interned AND
  clause, whose plan tier reads through the same channel.
* **Lossless telemetry.** Each ``run_batch``/``step`` reply carries the
  worker registry's delta since the last reply (the worker swaps in a fresh
  registry after shipping), and the parent folds it into its own registry
  with :meth:`~repro.obs.MetricsRegistry.merge_from` — counters add,
  histograms absorb bucket-wise, nothing is lost. Worker-side *trace
  records* roll up the same way: the reply also carries the worker
  tracer's drained ring (:meth:`~repro.obs.Tracer.take_records`), which
  the parent re-records into its own tracer/sink
  (:meth:`~repro.obs.Tracer.ingest`) — causal ids, timestamps and pids
  preserved, so the merged sink holds one well-formed distributed trace.
* **Causal trace context.** Every command carries the parent's current
  :class:`~repro.obs.SpanContext` (or ``None``); the worker re-attaches it
  around dispatch, so spans opened inside the worker — the shard batch,
  plan-cache upcalls — parent under the cluster-side span that issued the
  command, across the process boundary.

Protocol: the parent sends ``(op, args, kwargs, ctx)`` and then receives
until a terminal ``("ok", result)`` or ``("err", exception)`` arrives; any
``("plancache", request)`` received in between is a nested upcall from the
worker (plan-cache read-through mid-dispatch) that the *blocked parent
thread itself* services and answers. Messages strictly alternate per pipe
and each proxy serializes callers on its own lock, so the channel never
carries two requests at once and a hung worker is detected by liveness
polling rather than a silent stall.
"""

from __future__ import annotations

import faulthandler
import multiprocessing
import threading
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.adaptive.policy import AdaptivePolicy
from repro.cluster.partition import TreeLike, stream_weight_vector
from repro.cluster.shard import ShardServer
from repro.core.heuristics.base import Scheduler
from repro.engine.executor import ExecutionResult, LeafOracle
from repro.errors import AdmissionError, StreamError
from repro.obs import MetricsRegistry, Telemetry, Tracer
from repro.obs.trace import attach_context, current_context
from repro.service.metrics import ServiceMetrics
from repro.service.plan_cache import CachedPlan, PlanCache
from repro.service.server import BatchReport, QueryServer, QuerySnapshot
from repro.service.substore import SubtreeStore
from repro.streams.registry import StreamRegistry

__all__ = ["WorkerConfig", "ShardWorkerProxy", "RemotePlanCache"]

#: Seconds between liveness checks while a parent thread waits on a worker.
_POLL_SECONDS = 1.0


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a spawned worker needs to rebuild its shard from scratch."""

    shard_id: int
    registry: StreamRegistry
    scheduler: str | Scheduler
    shared_plan: bool
    warmup: int
    adaptive: AdaptivePolicy | None
    use_plan_cache: bool
    telemetry_enabled: bool
    telemetry_detail: bool
    #: Build the worker's QueryServer on the worker-process-wide substore
    #: (interned canonical identity + admission memo). Identity is
    #: per-process; interned nodes arriving in snapshots re-intern here.
    use_substore: bool = True
    #: Worker trace-ring size; sized to the parent's ring so a batch's
    #: records survive until the reply ships them (drain-on-reply means
    #: overflow only matters within a single batch).
    trace_capacity: int = 4096


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class RemotePlanCache(PlanCache):
    """Worker-side stub of the parent-owned cluster plan cache.

    Subclasses :class:`PlanCache` so :class:`QueryServer` accepts it
    unchanged, but holds no plans of its own: :meth:`plan` is read-through
    over the command channel (lookup; on miss compute locally and publish),
    and :meth:`invalidate` forwards. Hit/miss counters are kept *locally* so
    the server's per-round ``hit_rate`` reads never touch the pipe; the
    parent cache keeps its own counters from the lookup/publish traffic, so
    both sides observe consistent read-through semantics.

    When the worker is traced, each :meth:`plan` wraps itself in a
    ``plan-cache-upcall`` span — the pipe round-trips are the one place a
    worker blocks on the parent mid-batch, which is exactly what latency
    attribution needs to see.
    """

    def __init__(self, conn, tracer: Tracer | None = None) -> None:
        # All plans live in the parent; capacity 1 is a dummy (the local
        # OrderedDicts stay empty — every tier reads through the pipe).
        super().__init__(capacity=1)
        self._conn = conn
        self._tracer = tracer

    def __getstate__(self) -> dict:
        # Not lock-bearing itself (the lock lives in PlanCache, whose hooks
        # we would otherwise inherit), but the inherited state would drag
        # the live pipe connection along; make the contract explicit.
        raise TypeError(
            "RemotePlanCache wraps a live worker pipe; workers receive a "
            "fresh stub from WorkerConfig, it is never pickled"
        )

    def _rpc(self, request):
        self._conn.send(("plancache", request))
        return self._conn.recv()

    def plan(self, form, scheduler: Scheduler) -> CachedPlan:
        if self._tracer is None:
            winner, _ = self._plan_impl(form, scheduler)
            return winner
        with self._tracer.span(
            "plan-cache-upcall", key=form.key, scheduler=scheduler.name
        ) as attrs:
            winner, hit = self._plan_impl(form, scheduler)
            attrs["hit"] = hit
        return winner

    def _plan_impl(self, form, scheduler: Scheduler) -> tuple[CachedPlan, bool]:
        cached = self._rpc(("get", (form.key, scheduler.name)))
        if cached is not None:
            with self._lock:
                self.hits += 1
            return cached, True
        # Local compute on a cluster-wide miss still reuses cached clause
        # plans (partial sharing below the whole-tree key): clause lookups
        # read through to the parent too, so a clause first planned on any
        # worker is reused by every worker. The pipe traffic is bounded —
        # clause activity only happens here, on a whole-tree miss, which the
        # parent cache already makes once-per-shape cluster-wide.
        schedule = self._schedule_canonical(form, scheduler)
        from repro.core.cost import dnf_schedule_cost

        plan = CachedPlan(
            key=form.key,
            scheduler_name=scheduler.name,
            schedule=tuple(schedule),
            cost=dnf_schedule_cost(form.tree, schedule, validate=True),
        )
        winner, inserted = self._rpc(("put", plan))
        with self._lock:
            if inserted:
                self.misses += 1
            else:
                self.hits += 1
        return winner, not inserted

    def invalidate(self, key: str) -> int:
        return self._rpc(("invalidate", key))

    def clause_lookup(self, clause_key: str):
        return self._rpc(("clause_get", clause_key))

    def clause_publish(self, clause_key: str, entry):
        return self._rpc(("clause_put", (clause_key, entry)))


def _dispatch(shard: ShardServer, telemetry: Telemetry | None, op: str, args, kwargs):
    """Execute one parent command against the worker's shard."""
    if op == "run_batch":
        report = shard.run_batch(*args, **kwargs)
        return (
            report,
            shard.last_batch_seconds,
            _ship_registry(telemetry),
            _ship_trace(telemetry),
        )
    if op == "step":
        return shard.step(), _ship_registry(telemetry), _ship_trace(telemetry)
    if op == "register":
        shard.register(*args, **kwargs)
        return None
    if op == "deregister":
        shard.deregister(*args)
        return None
    if op == "admit_migrated":
        shard.admit_migrated(*args)
        return None
    if op == "export_query":
        return shard.server.export_query(*args)
    if op == "query":
        return shard.server.query(*args)
    if op == "reorder":
        shard.server.reorder(*args)
        return None
    if op == "sync_round_clock":
        shard.server.sync_round_clock(*args)
        return None
    if op == "rounds_served":
        return shard.server.rounds_served
    if op == "metrics":
        return shard.server.metrics
    if op == "export_stream_state":
        return shard.server.cache.export_stream_state(*args)
    if op == "adopt_stream_state":
        shard.server.cache.adopt_stream_state(*args)
        return None
    raise StreamError(f"unknown shard worker op {op!r}")


def _ship_registry(telemetry: Telemetry | None) -> MetricsRegistry | None:
    """Detach and return the worker's metrics delta (None when disabled).

    Recording sites always reach cells through ``telemetry.registry`` (the
    hot-path contract bans caching cells across rounds), so swapping in a
    fresh registry cleanly closes the delta: every observation lands either
    in the shipped registry or the next one, never both.
    """
    if telemetry is None:
        return None
    # Ring-overflow drops ride the delta as counter increments (the synced
    # watermark lives on the Telemetry, so swapping registries stays exact).
    telemetry.sync_trace_drops()
    delta = telemetry.registry
    telemetry.registry = MetricsRegistry()
    return delta


def _ship_trace(telemetry: Telemetry | None) -> list[dict] | None:
    """Drain and return the worker tracer's ring (None when disabled).

    The worker-side half of trace roll-up: spans recorded since the last
    reply — the shard batch, its nested server batch, plan-cache upcalls —
    travel to the parent, which re-records them next to its own spans.
    Causal ids are preserved, so the merged trace stays one tree.
    """
    if telemetry is None:
        return None
    return telemetry.tracer.take_records()


def _shard_worker_main(conn, config: WorkerConfig) -> None:
    """Entry point of one spawned shard worker (module-level: spawn-picklable)."""
    faulthandler.enable()  # a stuck worker dumps tracebacks on SIGABRT et al.
    telemetry = (
        Telemetry(
            enabled=True,
            detail=config.telemetry_detail,
            capacity=config.trace_capacity,
        )
        if config.telemetry_enabled
        else None
    )
    plan_cache = (
        RemotePlanCache(conn, telemetry.tracer if telemetry is not None else None)
        if config.use_plan_cache
        else None
    )
    server = QueryServer(
        config.registry,
        scheduler=config.scheduler,
        plan_cache=plan_cache,
        substore=config.use_substore,
        shared_plan=config.shared_plan,
        warmup=config.warmup,
        adaptive=config.adaptive,
        telemetry=telemetry,
    )
    shard = ShardServer(config.shard_id, server, config.registry.cost_table())
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away; nothing left to serve
        op, args, kwargs, ctx = message
        if op == "shutdown":
            conn.send(("ok", None))
            return
        try:
            # Re-attach the parent's span context so spans opened during
            # dispatch parent under the cluster-side span that sent the
            # command (a fresh process has an empty contextvar context).
            with attach_context(ctx):
                result = _dispatch(shard, telemetry, op, args, kwargs)
            conn.send(("ok", result))
        except BaseException as exc:  # noqa: BLE001 - must cross the pipe
            try:
                conn.send(("err", exc))
            except Exception:
                # The exception itself would not pickle; ship a plain one.
                conn.send(
                    ("err", StreamError(f"shard worker {op} failed: {exc!r}"))
                )


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _RemoteCacheFacade:
    """The slice of ``DataItemCache`` migrations touch, forwarded over RPC."""

    def __init__(self, proxy: "ShardWorkerProxy") -> None:
        self._proxy = proxy

    def export_stream_state(self, streams):
        return self._proxy._call("export_stream_state", set(streams))

    def adopt_stream_state(self, donor_now, stores) -> None:
        self._proxy._call("adopt_stream_state", donor_now, stores)


class _RemoteServerFacade:
    """The slice of ``QueryServer`` the cluster drives, forwarded over RPC.

    Population membership and order are answered from the proxy's local
    mirror (every mutation flows through the proxy, so the mirror is
    authoritative); state-bearing calls cross the pipe.
    """

    def __init__(self, proxy: "ShardWorkerProxy") -> None:
        self._proxy = proxy
        self.cache = _RemoteCacheFacade(proxy)

    def __len__(self) -> int:
        return len(self._proxy)

    def __contains__(self, name: str) -> bool:
        return name in self._proxy

    @property
    def registered(self) -> tuple[str, ...]:
        return self._proxy.names

    @property
    def rounds_served(self) -> int:
        return self._proxy._call("rounds_served")

    @property
    def metrics(self) -> ServiceMetrics:
        return self._proxy._call("metrics")

    def query(self, name: str):
        return self._proxy._call("query", name)

    def export_query(self, name: str) -> QuerySnapshot:
        snapshot = self._proxy._call("export_query", name)
        self._proxy._forget(name)
        return snapshot

    def reorder(self, names: Sequence[str]) -> None:
        names = list(names)
        self._proxy._call("reorder", names)
        self._proxy._names = names

    def sync_round_clock(self, rounds: int) -> None:
        self._proxy._call("sync_round_clock", rounds)


class ShardWorkerProxy:
    """Parent-side handle on one spawned shard worker.

    Duck-types :class:`~repro.cluster.shard.ShardServer`: the router and the
    cluster's control plane read ``shard_id`` / ``signature`` / ``names`` /
    ``len`` / ``in`` from a locally maintained mirror (zero RPC — every
    mutation flows through this proxy, so the mirror cannot drift), while
    execution and migration calls are forwarded to the worker. Metrics
    deltas riding on batch/step replies are folded into ``registry_sink``;
    trace deltas are re-recorded into ``trace_sink`` (the parent tracer),
    so the parent's ring/JSONL holds the merged distributed trace.
    """

    def __init__(
        self,
        config: WorkerConfig,
        *,
        plan_cache: PlanCache | None,
        registry_sink: MetricsRegistry | None,
        costs: Mapping[str, float],
        trace_sink: Tracer | None = None,
        substore: SubtreeStore | None = None,
    ) -> None:
        self.shard_id = config.shard_id
        self._costs = dict(costs)
        self._plan_cache = plan_cache
        # Parent-side store for signature weights (the worker process grows
        # its own store independently for admission-side interning).
        self._substore = substore
        self._sink = registry_sink
        self._trace_sink = trace_sink
        self.signature: dict[str, float] = {}
        self.last_batch_seconds: float = 0.0
        self._names: list[str] = []
        self._trees: dict[str, TreeLike] = {}
        self._lock = threading.RLock()
        context = multiprocessing.get_context("spawn")
        self._conn, child_conn = context.Pipe()
        self._proc = context.Process(
            target=_shard_worker_main,
            args=(child_conn, config),
            name=f"repro-shard-{config.shard_id}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()  # the worker holds its own copy
        self.server = _RemoteServerFacade(self)

    def __getstate__(self) -> dict:
        # RPR001: explicit pickle contract. The proxy owns a live worker
        # process and its pipe; there is nothing meaningful to transplant.
        raise TypeError(
            "ShardWorkerProxy is process-local (owns a worker process and "
            "its pipe); spawn a new worker instead of pickling the proxy"
        )

    # -- transport -------------------------------------------------------

    def _call(self, op: str, *args, **kwargs):
        with self._lock:
            if self._proc is None:
                raise StreamError(
                    f"shard {self.shard_id} worker is closed; cannot run {op!r}"
                )
            try:
                # The caller's span context rides along so worker-side spans
                # parent under the span dispatching this command.
                self._conn.send((op, args, kwargs, current_context()))
                while True:
                    while not self._conn.poll(_POLL_SECONDS):
                        if not self._proc.is_alive():
                            raise StreamError(
                                f"shard {self.shard_id} worker died while "
                                f"serving {op!r} (exit code "
                                f"{self._proc.exitcode})"
                            )
                    kind, payload = self._conn.recv()
                    if kind == "plancache":
                        # Nested upcall: the worker needs the cluster plan
                        # cache mid-dispatch; this (blocked) thread serves it.
                        self._conn.send(self._serve_plan_cache(payload))
                        continue
                    if kind == "ok":
                        return payload
                    raise payload
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise StreamError(
                    f"shard {self.shard_id} worker connection failed during "
                    f"{op!r}: {exc!r}"
                ) from exc

    def _serve_plan_cache(self, request):
        cache = self._plan_cache
        if cache is None:  # defensive: workers only upcall when configured
            raise StreamError("worker requested a plan cache the cluster lacks")
        kind, payload = request
        if kind == "get":
            key, scheduler_name = payload
            return cache.lookup(key, scheduler_name)
        if kind == "put":
            return cache.publish(payload)
        if kind == "invalidate":
            return cache.invalidate(payload)
        if kind == "clause_get":
            return cache.clause_lookup(payload)
        if kind == "clause_put":
            clause_key, entry = payload
            return cache.clause_publish(clause_key, entry)
        raise StreamError(f"unknown plan-cache request {kind!r}")

    def _merge_delta(self, delta: MetricsRegistry | None) -> None:
        if delta is not None and self._sink is not None:
            self._sink.merge_from(delta)

    def _merge_trace(self, records: list[dict] | None) -> None:
        if records and self._trace_sink is not None:
            self._trace_sink.ingest(records)

    def _forget(self, name: str) -> None:
        self._names.remove(name)
        self._trees.pop(name, None)

    def _grow_signature(self, tree: TreeLike) -> None:
        if self._substore is not None:
            weights = self._substore.stream_weights(tree, self._costs)
        else:
            weights = stream_weight_vector(tree, self._costs)
        for stream, weight in weights.items():
            if weight > self.signature.get(stream, 0.0):
                self.signature[stream] = weight

    # -- population mirror ----------------------------------------------

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._trees

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._names)

    @property
    def streams(self) -> frozenset[str]:
        return frozenset(self.signature)

    def register(
        self,
        name: str,
        tree: TreeLike,
        *,
        oracle: LeafOracle | None = None,
        scheduler: str | None = None,
    ) -> None:
        self._call("register", name, tree, oracle=oracle, scheduler=scheduler)
        self._names.append(name)
        self._trees[name] = tree
        self._grow_signature(tree)

    def deregister(self, name: str) -> None:
        if name not in self._trees:
            raise AdmissionError(
                f"query {name!r} is not resident on shard {self.shard_id}"
            )
        self._call("deregister", name)
        self._forget(name)
        self.rebuild_signature()

    def admit_migrated(self, snapshot: QuerySnapshot) -> None:
        self._call("admit_migrated", snapshot)
        self._names.append(snapshot.query.name)
        self._trees[snapshot.query.name] = snapshot.query.tree
        self._grow_signature(snapshot.query.tree)

    def rebuild_signature(self) -> None:
        self.signature = {}
        for tree in self._trees.values():
            self._grow_signature(tree)

    # -- execution -------------------------------------------------------

    def step(self) -> dict[str, ExecutionResult]:
        results, delta, trace = self._call("step")
        self._merge_delta(delta)
        self._merge_trace(trace)
        return results

    def run_batch(self, rounds: int, *, engine: str = "scalar") -> BatchReport:
        report, seconds, delta, trace = self._call(
            "run_batch", rounds, engine=engine
        )
        self.last_batch_seconds = seconds
        self._merge_delta(delta)
        self._merge_trace(trace)
        return report

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut the worker down; idempotent, tolerates a dead worker."""
        with self._lock:
            if self._proc is None:
                return
            proc, conn = self._proc, self._conn
            self._proc = None
            try:
                if proc.is_alive():
                    conn.send(("shutdown", (), {}, None))
                    if conn.poll(5.0):
                        conn.recv()  # the shutdown ack
            except (EOFError, BrokenPipeError, OSError):
                pass  # already gone; join/terminate below still apply
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            conn.close()

    def __del__(self) -> None:  # best effort; close() is the real API
        try:
            self.close()
        # Swallowing is legitimate only here: __del__ may run during
        # interpreter shutdown when the pipe module is already torn down,
        # and raising from a finalizer just prints noise we cannot act on.
        except Exception:  # repro-lint: disable=RPR006
            pass
