"""The sharded serving cluster: partitioned shards behind one front door.

:class:`ClusterServer` is the scale-out layer above
:class:`~repro.service.server.QueryServer`: the query population is
partitioned by stream overlap (:mod:`repro.cluster.partition`) into shards,
each shard serves its residents on its own :class:`QueryServer` (own stream
cache, own adaptive controller), and a :class:`~repro.cluster.router.ShardRouter`
admits runtime arrivals to the shard whose streams they already share.
Sharing stays *within* a shard — where the overlap graph says it actually
exists — while shards stay independent, so they batch concurrently on a
thread pool and a churn event (admission, departure, re-plan) invalidates
one shard's merged plan instead of the whole population's.

All shards share one thread-safe :class:`~repro.service.plan_cache.PlanCache`,
so a canonical query shape pays its scheduling cost once across the entire
cluster, not once per shard.

The cluster's width is *elastic*: :meth:`ClusterServer.split_shard` divides
an overloaded shard along its stream-disjoint sub-clusters,
:meth:`ClusterServer.drain_shard` migrates a shard's residents out through
the router and retires it, and :meth:`ClusterServer.resize` composes both.
Every move transplants the queries' full serving state — oracle instances,
expanded schedules, cached plans, lifetime metrics, adaptive beliefs and the
stream cache's held items — so placement changes never change what a query
costs: a population served through any sequence of splits, drains and
resizes produces per-query costs bit-identical to the unsharded server on
the same seeds (the elasticity differential suite asserts exactly that).
Wiring an :class:`~repro.adaptive.ElasticPolicy` makes the width
self-managing: after each batch the cluster splits overloaded shards,
drains underloaded ones and rebalances on churn/drift/cut-spend signals,
without operator calls.

:meth:`ClusterServer.run_batch` fans the round loop out over the shards and
aggregates the per-shard reports into one :class:`ClusterReport`;
:meth:`ClusterServer.rebalance` re-partitions the live population when churn
or drift has degraded the placement, migrating only the queries whose shard
actually changes.
"""

from __future__ import annotations

import functools
import os
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.adaptive.elastic import ElasticPolicy
from repro.adaptive.policy import AdaptivePolicy
from repro.cluster.partition import (
    Partition,
    PartitionReport,
    TreeLike,
    build_overlap_graph,
    pack_pieces,
    partition_by_overlap,
    partition_report,
    random_partition,
    shard_split_pieces,
    stream_weight_vector,
)
from repro.cluster.router import ShardRouter
from repro.cluster.shard import ShardServer
from repro.core.heuristics.base import Scheduler
from repro.engine.executor import BernoulliOracle, ExecutionResult, LeafOracle
from repro.errors import AdmissionError, StreamError
from repro.obs import MetricsRegistry, Telemetry
from repro.obs.slo import SloMonitor, SloObjective, SloStatus
from repro.obs.trace import attach_context, current_context
from repro.service.metrics import ServiceMetrics
from repro.service.plan_cache import PlanCache
from repro.service.server import DEFAULT_SCHEDULER, BatchReport, QueryServer
from repro.service.substore import SubtreeStore, default_store
from repro.streams.registry import StreamRegistry

__all__ = [
    "ClusterReport",
    "ClusterServer",
    "ElasticEvent",
    "RebalanceEvent",
    "default_oracle_factory",
]


def _synchronized(method):
    """Run ``method`` under the cluster's reentrant lock."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class _NameSeededOracleFactory:
    """Picklable ``name -> BernoulliOracle`` factory (see default_oracle_factory).

    A class rather than a closure so the factory itself can cross a process
    boundary (closures do not pickle); two factories with the same seed are
    interchangeable, wherever they were built.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def __call__(self, name: str) -> LeafOracle:
        return BernoulliOracle(
            seed=(self.seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8")))
            & 0x7FFFFFFF
        )


def default_oracle_factory(seed: int) -> Callable[[str], LeafOracle]:
    """Deterministic per-query Bernoulli oracles: seed mixed with the name.

    Because the oracle is derived from the query *name* (not from admission
    order or shard placement), a population served by any shard layout —
    including the unsharded single server — draws identical outcome streams,
    which is what makes sharded-vs-unsharded runs exactly comparable, and
    what keeps outcomes stable while elasticity moves queries between
    shards (migrations carry the oracle *instance*, so even its consumed
    random stream continues seamlessly). The returned factory is picklable,
    so process-mode workers can reconstruct identical oracles in-worker.
    """
    return _NameSeededOracleFactory(seed)


@dataclass(frozen=True)
class RebalanceEvent:
    """One re-partitioning of the live population."""

    old_report: PartitionReport
    new_report: PartitionReport
    #: Queries whose shard changed.
    moves: int

    def describe(self) -> str:
        return (
            f"rebalance: kept overlap {self.old_report.kept_fraction:.1%} -> "
            f"{self.new_report.kept_fraction:.1%}, {self.moves} queries moved, "
            f"{self.old_report.n_shards} -> {self.new_report.n_shards} shards"
        )


@dataclass(frozen=True)
class ElasticEvent:
    """One elastic topology change (operator-requested or policy-triggered)."""

    #: "split" | "drain" | "drain-partial" | "grow" | "rebalance"
    kind: str
    #: Cluster rounds served when the event fired.
    round_index: int
    #: Subject shard: the split/drained shard, the spawned shard for "grow",
    #: -1 for a rebalance (which touches the whole cluster).
    shard_id: int
    #: Shards that received queries (split targets, drain destinations).
    new_shard_ids: tuple[int, ...]
    #: Queries migrated by the event.
    moves: int
    #: "operator" for explicit calls, "auto:<signal>" for policy triggers.
    trigger: str
    detail: str = ""

    def describe(self) -> str:
        targets = ",".join(str(sid) for sid in self.new_shard_ids) or "-"
        return (
            f"round {self.round_index}: {self.kind} shard {self.shard_id} "
            f"-> [{targets}], {self.moves} queries moved ({self.trigger})"
            + (f"; {self.detail}" if self.detail else "")
        )


@dataclass
class ClusterReport:
    """Aggregate of one concurrent batch across every active shard.

    The cost/probe/item aggregates are *stored fields*, not recomputed
    sums: :meth:`ClusterServer.run_batch` first records each shard's batch
    totals into the cluster's metrics registry, then derives these fields
    from the registry's counter deltas. The report and any exported metrics
    snapshot therefore read from one source of truth and can never diverge
    (a regression test asserts the equality).
    """

    rounds: int
    workers: int
    wall_seconds: float
    shard_reports: dict[int, BatchReport]
    shard_seconds: dict[int, float]
    shard_sizes: dict[int, int]
    plan_cache_hit_rate: float
    router_overlap_hit_rate: float
    rebalances: int
    #: Cluster width (shard count, including empty shards) after the batch
    #: and any automatic elastic actions it triggered.
    n_shards_total: int = 0
    #: Lifetime elastic counters at report time.
    splits: int = 0
    drains: int = 0
    #: Human-readable descriptions of the elastic actions the policy took
    #: right after this batch (empty without an ElasticPolicy).
    elastic_actions: tuple[str, ...] = ()
    #: Batch aggregates, derived from the metrics registry's counter deltas.
    total_cost: float = 0.0
    probes: int = 0
    free_probes: int = 0
    items_fetched: int = 0
    items_saved: int = 0
    replans: int = 0
    #: Latency-objective verdicts from the cluster's SloMonitor, evaluated
    #: right after the batch (empty when no monitor is configured).
    slo_statuses: tuple[SloStatus, ...] = ()

    # -- aggregates ------------------------------------------------------

    @property
    def n_queries(self) -> int:
        return sum(self.shard_sizes.values())

    @property
    def evals(self) -> int:
        """Query evaluations performed: residents x rounds, summed over shards."""
        return self.rounds * self.n_queries

    @property
    def throughput(self) -> float:
        """Query evaluations per wall-clock second of the concurrent batch."""
        return self.evals / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    @property
    def per_query_cost(self) -> dict[str, float]:
        merged: dict[str, float] = {}
        for report in self.shard_reports.values():
            merged.update(report.per_query_cost)
        return merged

    @property
    def per_query_true_rate(self) -> dict[str, float]:
        merged: dict[str, float] = {}
        for report in self.shard_reports.values():
            merged.update(report.per_query_true_rate)
        return merged

    def summary(self) -> str:
        busiest = max(self.shard_seconds.values(), default=0.0)
        lines = [
            f"cluster batch: {self.rounds} rounds x {self.n_queries} queries on "
            f"{len(self.shard_reports)} shards ({self.workers} workers)",
            f"  wall {self.wall_seconds:.3f}s (busiest shard {busiest:.3f}s), "
            f"{self.throughput:,.0f} evals/s",
            f"  total cost {self.total_cost:.6g}, probes {self.probes} "
            f"({self.free_probes} free), items {self.items_fetched} fetched / "
            f"{self.items_saved} saved",
            f"  plan-cache hit rate {self.plan_cache_hit_rate:.1%}, "
            f"router overlap hits {self.router_overlap_hit_rate:.1%}, "
            f"{self.replans} replans, {self.rebalances} rebalances, "
            f"{self.splits} splits / {self.drains} drains "
            f"(width {self.n_shards_total})",
        ]
        for action in self.elastic_actions:
            lines.append(f"  elastic: {action}")
        for status in self.slo_statuses:
            lines.append(f"  slo: {status.describe()}")
        for shard_id in sorted(self.shard_reports):
            report = self.shard_reports[shard_id]
            lines.append(
                f"  shard {shard_id}: {self.shard_sizes[shard_id]} queries, "
                f"cost {report.total_cost:.6g}, "
                f"{self.shard_seconds[shard_id]:.3f}s"
            )
        return "\n".join(lines)


class ClusterServer:
    """An elastic cluster of stream-overlap shards behind a router.

    Parameters
    ----------
    registry:
        The shared sensing environment. Every shard builds its own cache
        over the same (thread-safe, memoized) source tapes, so two shards
        windowing one cut stream read identical values.
    n_shards:
        Initial cluster width. Shards may stay empty when the population has
        fewer overlap components than ``n_shards``; the width changes online
        through :meth:`split_shard`, :meth:`drain_shard`, :meth:`resize` or
        an :class:`~repro.adaptive.ElasticPolicy`.
    workers:
        Thread-pool width for concurrent shard batches; ``None`` sizes to
        ``min(active shards, cpu count)`` (``executor="thread"``) or to the
        active shard count (``executor="process"``, where parent threads
        only wait on pipes), ``1`` runs shards serially.
    executor:
        ``"thread"`` (default) runs every shard in-process on a thread pool
        — zero serialization cost, but the GIL keeps the batch on one core.
        ``"process"`` spawns one worker process per shard
        (:mod:`repro.cluster.worker`): shards batch on separate cores, the
        cluster-wide plan cache is served read-through over the command
        channel, migrations ship ``QuerySnapshot`` + stream state as plain
        data, and workers return pickled metrics deltas merged losslessly
        into the cluster registry — per-query outcomes are bit-identical
        across both executors (the parity suites assert it). Call
        :meth:`close` (or use the cluster as a context manager) to shut
        workers down.
    scheduler, shared_plan, warmup, adaptive:
        Forwarded to every shard's :class:`QueryServer`; ``adaptive`` must be
        an :class:`~repro.adaptive.AdaptivePolicy` (pure config — each shard
        builds its own controller) or ``None``.
    plan_cache:
        Capacity of the *cluster-wide* plan cache shared by all shards
        (a :class:`PlanCache` instance is used as-is; ``None``/``0``
        disables plan caching everywhere).
    oracle_factory:
        ``name -> LeafOracle`` for admissions without an explicit oracle;
        the default draws per-query Bernoulli oracles deterministically from
        ``seed`` and the query name (placement-independent outcomes).
    max_shard_queries:
        Per-shard admission capacity, enforced by the router and the
        partitioner (and by migrations: a drain refuses to overfill its
        destinations).
    elastic:
        An :class:`~repro.adaptive.ElasticPolicy` enabling automatic
        split/drain/rebalance after each batch; ``None`` (default) leaves
        the width entirely to the operator.
    telemetry:
        A :class:`~repro.obs.Telemetry` shared by the cluster and every
        shard's :class:`QueryServer` (both halves are thread-safe; shard
        identity rides on metric labels). Batches run inside
        ``"cluster-batch"`` spans, every elastic action and migration is a
        traced event, and per-shard wall-clock lands in labelled
        histograms. ``None`` (default) records nothing — the cluster still
        keeps a private registry so :class:`ClusterReport` aggregates stay
        registry-derived, but it is touched once per batch, never per round.
        In process mode, worker-side spans roll up into the parent tracer
        (causally linked under the dispatching cluster-batch span), so the
        sink holds one merged distributed trace.
    slo:
        Latency objectives to monitor: an :class:`~repro.obs.SloMonitor`,
        or a sequence of :class:`~repro.obs.SloObjective` (wrapped in a
        monitor with default burn windows). Evaluated against the metrics
        registry after every batch; verdicts land on
        :attr:`ClusterReport.slo_statuses` and, as gauges, in every
        snapshot/Prometheus export. ``None`` (default) monitors nothing.
    """

    def __init__(
        self,
        registry: StreamRegistry,
        *,
        n_shards: int = 4,
        workers: int | None = None,
        executor: str = "thread",
        scheduler: str | Scheduler = DEFAULT_SCHEDULER,
        plan_cache: PlanCache | int | None = 256,
        substore: SubtreeStore | bool | None = True,
        shared_plan: bool = True,
        warmup: int = 64,
        adaptive: AdaptivePolicy | None = None,
        oracle_factory: Callable[[str], LeafOracle] | None = None,
        max_shard_queries: int | None = None,
        elastic: ElasticPolicy | None = None,
        seed: int = 0,
        telemetry: Telemetry | None = None,
        slo: SloMonitor | Sequence[SloObjective] | None = None,
    ) -> None:
        if n_shards < 1:
            raise AdmissionError(f"need at least one shard, got {n_shards}")
        if executor not in ("thread", "process"):
            raise AdmissionError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if adaptive is not None and not isinstance(adaptive, AdaptivePolicy):
            raise AdmissionError(
                "adaptive must be an AdaptivePolicy (each shard builds its own "
                f"controller), got {type(adaptive).__name__}"
            )
        if elastic is not None and not isinstance(elastic, ElasticPolicy):
            raise AdmissionError(
                f"elastic must be an ElasticPolicy or None, got {type(elastic).__name__}"
            )
        self.registry = registry
        self.workers = workers
        self.executor = executor
        self.seed = seed
        self._scheduler = scheduler
        self._shared_plan = shared_plan
        self._warmup = warmup
        self._adaptive = adaptive
        self._max_shard_queries = max_shard_queries
        self.elastic = elastic
        if isinstance(plan_cache, PlanCache):
            self.plan_cache: PlanCache | None = plan_cache
        elif plan_cache:
            self.plan_cache = PlanCache(capacity=int(plan_cache))
        else:
            self.plan_cache = None
        # Hash-consed canonical node store shared by the parent and every
        # thread-mode shard (worker processes grow their own). Feeds the
        # partitioner/router memoized overlap weights and thread shards
        # interned admission identity.
        if isinstance(substore, SubtreeStore):
            self.substore: SubtreeStore | None = substore
        elif substore:
            self.substore = default_store()
        else:
            self.substore = None
        self.oracle_factory = (
            oracle_factory if oracle_factory is not None else default_oracle_factory(seed)
        )
        self.telemetry = telemetry
        if slo is None or isinstance(slo, SloMonitor):
            self.slo: SloMonitor | None = slo
        else:
            self.slo = SloMonitor(tuple(slo))
        # Batch aggregates flow registry -> report even without telemetry:
        # the private registry makes the derivation unconditional (one source
        # of truth), at the cost of a handful of counter ops per *batch*.
        self._registry = telemetry.registry if telemetry is not None else MetricsRegistry()
        self.router = ShardRouter(
            costs=registry.cost_table(), max_shard_queries=max_shard_queries
        )
        #: Stable shard id -> live shard. Ids are never reused: a split's new
        #: shards and a drain's retirement keep every id's history unambiguous.
        self.shards: dict[int, ShardServer] = {}
        self._next_shard_id = 0
        for _ in range(n_shards):
            self._spawn_shard()
        self._assignment: dict[str, int] = {}
        self._order: list[str] = []
        self.rebalances: list[RebalanceEvent] = []
        #: Audit log of every topology change (splits, drains, grows,
        #: rebalances), operator-requested and policy-triggered alike.
        self.elastic_log: list[ElasticEvent] = []
        self._rounds_served = 0
        self._batches_since_check = 0
        #: Cluster-level churn (admissions + departures; migrations excluded)
        #: and retired-shard re-plan carry-over, for the elastic triggers.
        self._churn = 0
        self._churn_mark = 0
        self._replans_retired = 0
        self._replans_mark = 0
        # Cluster-level mutations (admission, departure, split, drain,
        # resize, rebalance) and batches serialize on one reentrant lock,
        # mirroring QueryServer's contract: background admission threads are
        # safe, and a topology change can never swap the shard set out from
        # under an in-flight batch. Within a batch the shards still run
        # concurrently on the pool. Reentrant because resize -> drain_shard
        # and run_batch -> _auto_elastic -> split/drain/rebalance nest.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        # RPR001: explicit pickle contract. A cluster owns live shards —
        # possibly whole worker processes — plus an RLock and a thread
        # pool; none of that can cross a process boundary. Reconstruct a
        # cluster from its registry/population instead.
        raise TypeError(
            "ClusterServer is process-local (live shards, worker processes, "
            "RLock); rebuild one from the registry and population rather "
            "than pickling it"
        )

    def _new_shard(self, shard_id: int) -> ShardServer:
        if self.executor == "process":
            from repro.cluster.worker import ShardWorkerProxy, WorkerConfig

            telemetry_on = self.telemetry is not None and self.telemetry.enabled
            config = WorkerConfig(
                shard_id=shard_id,
                registry=self.registry,
                scheduler=self._scheduler,
                shared_plan=self._shared_plan,
                warmup=self._warmup,
                adaptive=self._adaptive,
                use_plan_cache=self.plan_cache is not None,
                use_substore=self.substore is not None,
                telemetry_enabled=telemetry_on,
                telemetry_detail=telemetry_on and self.telemetry.detail,
                trace_capacity=(
                    self.telemetry.tracer.capacity if telemetry_on else 4096
                ),
            )
            return ShardWorkerProxy(
                config,
                plan_cache=self.plan_cache,
                registry_sink=self._registry,
                costs=self.registry.cost_table(),
                trace_sink=self.telemetry.tracer if telemetry_on else None,
                substore=self.substore,
            )
        server = QueryServer(
            self.registry,
            scheduler=self._scheduler,
            plan_cache=self.plan_cache,
            substore=self.substore if self.substore is not None else False,
            shared_plan=self._shared_plan,
            warmup=self._warmup,
            adaptive=self._adaptive,
            telemetry=self.telemetry,
        )
        return ShardServer(shard_id, server, self.registry.cost_table())

    def _spawn_shard(self) -> ShardServer:
        shard = self._new_shard(self._next_shard_id)
        self._next_shard_id += 1
        self.shards[shard.shard_id] = shard
        return shard

    def _shard(self, shard_id: int) -> ShardServer:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise AdmissionError(f"no shard with id {shard_id}") from None

    # -- population ------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Current cluster width (live shards, including empty ones)."""
        return len(self.shards)

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, name: str) -> bool:
        return name in self._assignment

    @property
    def registered(self) -> tuple[str, ...]:
        """All resident query names, in cluster admission order."""
        return tuple(self._order)

    def shard_of(self, name: str) -> int:
        try:
            return self._assignment[name]
        except KeyError:
            raise AdmissionError(f"no query named {name!r} is registered") from None

    def query(self, name: str):
        return self.shards[self.shard_of(name)].server.query(name)

    def active_shards(self) -> list[ShardServer]:
        return [shard for shard in self.shards.values() if len(shard)]

    @property
    def splits(self) -> int:
        return sum(1 for event in self.elastic_log if event.kind == "split")

    @property
    def drains(self) -> int:
        return sum(1 for event in self.elastic_log if event.kind == "drain")

    @_synchronized
    def register(
        self, name: str, tree: TreeLike, *, oracle: LeafOracle | None = None
    ) -> int:
        """Admit one query through the router; returns the chosen shard id."""
        if name in self._assignment:
            raise AdmissionError(f"query {name!r} is already registered")
        decision = self.router.route(name, tree, list(self.shards.values()))
        shard = self.shards[decision.shard_id]
        shard.register(
            name, tree, oracle=oracle if oracle is not None else self.oracle_factory(name)
        )
        self.router.record(decision)
        self._assignment[name] = decision.shard_id
        self._order.append(name)
        self._churn += 1
        self._absorb_overlapping(decision.shard_id, self._weight_vector(tree))
        return decision.shard_id

    @_synchronized
    def register_population(
        self,
        population: Sequence[tuple[str, TreeLike]],
        *,
        partition: Partition | None = None,
        method: str = "overlap",
    ) -> Partition:
        """Bulk-admit a population along a computed (or given) partition.

        ``method="overlap"`` runs the stream-overlap partitioner,
        ``method="random"`` the overlap-blind baseline. Piece ``i`` of the
        partition lands on the ``i``-th live shard (by ascending id); queries
        register in population order within each shard, so a 1-shard cluster
        is probe-for-probe identical to the unsharded :class:`QueryServer`.
        """
        if partition is None:
            costs = self.registry.cost_table()
            if method == "overlap":
                partition = partition_by_overlap(
                    population,
                    self.n_shards,
                    costs,
                    max_shard_queries=self._max_shard_queries,
                )
            elif method == "random":
                partition = random_partition(
                    population, self.n_shards, costs, seed=self.seed
                )
            else:
                raise AdmissionError(
                    f"unknown partition method {method!r}; use 'overlap' or 'random'"
                )
        if partition.n_shards > self.n_shards:
            raise AdmissionError(
                f"partition has {partition.n_shards} shards, cluster only "
                f"{self.n_shards}"
            )
        trees = dict(population)
        order = {name: i for i, (name, _) in enumerate(population)}
        shard_ids = sorted(self.shards)
        for shard_id, members in zip(shard_ids, partition.shards):
            shard = self.shards[shard_id]
            for name in sorted(members, key=order.__getitem__):
                if name in self._assignment:
                    raise AdmissionError(f"query {name!r} is already registered")
                shard.register(name, trees[name], oracle=self.oracle_factory(name))
                self._assignment[name] = shard_id
                self._order.append(name)
        self._churn += len(population)
        # Bulk registration grows signatures behind the router's back.
        self.router.invalidate_signatures()
        return partition

    @_synchronized
    def deregister(self, name: str) -> None:
        shard_id = self.shard_of(name)
        self.shards[shard_id].deregister(name)
        del self._assignment[name]
        self._order.remove(name)
        self._churn += 1
        self.router.invalidate_signatures((shard_id,))

    # -- execution -------------------------------------------------------

    def _effective_workers(self, active: int) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        if self.executor == "process":
            # Parent threads only block on worker pipes — one per active
            # shard keeps every worker process busy regardless of how many
            # cores the *parent* sees.
            return max(1, active)
        return max(1, min(active, os.cpu_count() or 1))

    @_synchronized
    def step(self) -> dict[str, ExecutionResult]:
        """One concurrent round on every active shard; merged per-query results."""
        active = self.active_shards()
        if not active:
            raise StreamError("no queries registered in any shard")
        workers = self._effective_workers(len(active))
        if workers == 1 or len(active) == 1:
            round_results = [shard.step() for shard in active]
        else:
            # Pool threads start with an empty contextvar context; carry the
            # caller's span context over so shard spans (and the context the
            # worker pipe forwards) stay parented under any enclosing span.
            ctx = current_context()

            def step_shard(shard: ShardServer) -> dict[str, ExecutionResult]:
                with attach_context(ctx):
                    return shard.step()

            with ThreadPoolExecutor(max_workers=workers) as pool:
                round_results = list(pool.map(step_shard, active))
        self._rounds_served += 1
        merged: dict[str, ExecutionResult] = {}
        for results in round_results:
            merged.update(results)
        return merged

    @_synchronized
    def run_batch(self, rounds: int, *, engine: str = "scalar") -> ClusterReport:
        """Batch every active shard concurrently and aggregate the reports.

        With an :class:`~repro.adaptive.ElasticPolicy` configured, the
        policy is evaluated right after the batch (still under the cluster
        lock): the report's ``elastic_actions`` describe any splits, drains
        or rebalances it fired, and ``shard_sizes`` reflect the population
        as it was *during* the batch.
        """
        tel = self.telemetry
        if tel is None or not tel.enabled:
            return self._run_batch_impl(rounds, engine=engine)
        with tel.span(
            "cluster-batch", rounds=rounds, engine=engine, queries=len(self)
        ) as attrs:
            report = self._run_batch_impl(rounds, engine=engine)
            attrs["shards"] = len(report.shard_reports)
            attrs["workers"] = report.workers
            attrs["total_cost"] = report.total_cost
            attrs["wall_seconds"] = report.wall_seconds
            attrs["elastic_actions"] = len(report.elastic_actions)
        return report

    def _run_batch_impl(self, rounds: int, *, engine: str) -> ClusterReport:
        active = self.active_shards()
        if not active:
            raise StreamError("no queries registered in any shard")
        workers = self._effective_workers(len(active))
        start = time.perf_counter()
        if workers == 1 or len(active) == 1:
            reports = [shard.run_batch(rounds, engine=engine) for shard in active]
        else:
            # Re-attach the cluster-batch span context inside each pool
            # thread: thread-mode shard spans parent under it directly, and
            # process-mode proxies forward it down the worker pipe.
            ctx = current_context()

            def batch_shard(shard: ShardServer) -> BatchReport:
                with attach_context(ctx):
                    return shard.run_batch(rounds, engine=engine)

            with ThreadPoolExecutor(max_workers=workers) as pool:
                reports = list(pool.map(batch_shard, active))
        wall = time.perf_counter() - start
        self._rounds_served += rounds
        shard_reports = {
            shard.shard_id: report for shard, report in zip(active, reports)
        }
        shard_seconds = {shard.shard_id: shard.last_batch_seconds for shard in active}
        shard_sizes = {shard.shard_id: len(shard) for shard in active}
        auto: list[ElasticEvent] = []
        if self.elastic is not None:
            tel = self.telemetry
            if tel is not None and tel.enabled:
                # One span over the whole policy evaluation, so attribution
                # can separate elastic reshaping from the batch proper (the
                # per-action events and migration spans nest under it).
                with tel.span("elastic") as elastic_attrs:
                    auto = self._auto_elastic()
                    elastic_attrs["actions"] = len(auto)
            else:
                auto = self._auto_elastic()
        # Registry first, report second: the batch totals are recorded as
        # counter increments, and the report's aggregate fields are the
        # resulting *deltas* — so the dataclass and an exported snapshot can
        # never disagree (they are the same numbers, read once).
        reg = self._registry
        befores = {
            name: reg.value(name)
            for name in (
                "repro_cluster_cost_total",
                "repro_cluster_probes_total",
                "repro_cluster_free_probes_total",
                "repro_cluster_items_fetched_total",
                "repro_cluster_items_saved_total",
                "repro_cluster_replans_total",
            )
        }
        reg.counter("repro_cluster_batches_total").inc()
        reg.counter("repro_cluster_rounds_total").inc(rounds)
        reg.counter("repro_cluster_cost_total").inc(
            sum(report.total_cost for report in reports)
        )
        reg.counter("repro_cluster_probes_total").inc(
            sum(report.probes for report in reports)
        )
        reg.counter("repro_cluster_free_probes_total").inc(
            sum(report.free_probes for report in reports)
        )
        reg.counter("repro_cluster_items_fetched_total").inc(
            sum(report.items_fetched for report in reports)
        )
        reg.counter("repro_cluster_items_saved_total").inc(
            sum(report.items_saved for report in reports)
        )
        reg.counter("repro_cluster_replans_total").inc(
            sum(report.replans for report in reports)
        )
        reg.gauge("repro_cluster_shards").set(self.n_shards)
        reg.gauge("repro_cluster_queries").set(len(self))
        reg.histogram("repro_cluster_batch_seconds").observe(wall)
        # SLO verdicts come last so this batch's own latency observations
        # (shard histograms merged in above) are part of the checkpoint;
        # check() also writes the burn-rate gauges into the same registry.
        slo_statuses: tuple[SloStatus, ...] = ()
        if self.slo is not None:
            slo_statuses = tuple(self.slo.check(reg))
        report = ClusterReport(
            rounds=rounds,
            workers=workers,
            wall_seconds=wall,
            shard_reports=shard_reports,
            shard_seconds=shard_seconds,
            shard_sizes=shard_sizes,
            plan_cache_hit_rate=(
                self.plan_cache.hit_rate if self.plan_cache is not None else 0.0
            ),
            router_overlap_hit_rate=self.router.overlap_hit_rate,
            rebalances=len(self.rebalances),
            n_shards_total=self.n_shards,
            splits=self.splits,
            drains=self.drains,
            elastic_actions=tuple(event.describe() for event in auto),
            total_cost=reg.value("repro_cluster_cost_total")
            - befores["repro_cluster_cost_total"],
            probes=int(
                reg.value("repro_cluster_probes_total")
                - befores["repro_cluster_probes_total"]
            ),
            free_probes=int(
                reg.value("repro_cluster_free_probes_total")
                - befores["repro_cluster_free_probes_total"]
            ),
            items_fetched=int(
                reg.value("repro_cluster_items_fetched_total")
                - befores["repro_cluster_items_fetched_total"]
            ),
            items_saved=int(
                reg.value("repro_cluster_items_saved_total")
                - befores["repro_cluster_items_saved_total"]
            ),
            replans=int(
                reg.value("repro_cluster_replans_total")
                - befores["repro_cluster_replans_total"]
            ),
            slo_statuses=slo_statuses,
        )
        return report

    # -- migration -------------------------------------------------------

    def _weight_vector(self, tree: TreeLike) -> dict[str, float]:
        """Per-stream acquisition weights for ``tree``, memoized by the store.

        Value-identical to :func:`stream_weight_vector` (the weights are
        invariant under canonicalization); with a substore the vector is
        computed once per canonical identity instead of once per call.
        """
        costs = self.registry.cost_table()
        if self.substore is not None:
            return dict(self.substore.stream_weights(tree, costs))
        return stream_weight_vector(tree, costs)

    def _absorb_overlapping(self, home_id: int, weights: dict[str, float]) -> None:
        """Keep stream-sharing queries co-resident after an admission.

        A runtime arrival can *bridge* overlap components that were, until
        now, legitimately disjoint — and therefore placed on different
        shards. Leaving them apart would silently forfeit the sharing the
        cost model pays for (the new query's windows get fetched on two
        devices), so the smaller, already-routed pieces follow the admission
        to its home shard. On a capacity-bound cluster a piece that does not
        fit stays put (the cut is the price of the balance constraint).
        """
        home = self.shards[home_id]
        new_streams = set(weights)
        for sid in sorted(self.shards):
            if sid == home_id:
                continue
            other = self.shards[sid]
            if not len(other) or not (new_streams & set(other.signature)):
                continue
            population = [
                (name, other.server.query(name).tree) for name in other.names
            ]
            graph = build_overlap_graph(
                population, self.registry.cost_table(), store=self.substore
            )
            order = {name: index for index, name in enumerate(other.names)}
            for component in graph.components():
                component_streams: set[str] = set()
                for name in component:
                    component_streams.update(graph.weights[name])
                if not (component_streams & new_streams):
                    continue
                members = sorted(component, key=order.__getitem__)
                if (
                    self._max_shard_queries is not None
                    and len(home) + len(members) > self._max_shard_queries
                ):
                    continue
                self._migrate_group(members, sid, home_id)

    def _log_elastic(self, event: ElasticEvent, duration: float = 0.0) -> ElasticEvent:
        """Append to the audit log and mirror the action into telemetry."""
        self.elastic_log.append(event)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.registry.counter(
                "repro_elastic_actions_total", kind=event.kind
            ).inc()
            tel.event(
                "elastic-action",
                kind=event.kind,
                round=event.round_index,
                shard=event.shard_id,
                new_shards=list(event.new_shard_ids),
                moves=event.moves,
                trigger=event.trigger,
                detail=event.detail,
                duration=duration,
            )
        return event

    def _migrate_group(self, names: Sequence[str], src_id: int, dest_id: int) -> None:
        """Move ``names`` (one stream-coherent group) between live shards.

        The destination first adopts the source cache's held items for the
        movers' streams (and its round clock, when behind), then each query
        is transplanted verbatim — plan, schedule, oracle instance, lifetime
        stats, adaptive belief. Order inside the group is the source shard's
        registration order, so co-resident queries keep the same relative
        merge order they had (and would have had on the unsharded server).
        """
        tel = self.telemetry
        if tel is not None and tel.enabled:
            with tel.span(
                "migration", src=src_id, dest=dest_id, queries=len(names)
            ):
                self._migrate_group_impl(names, src_id, dest_id)
        else:
            self._migrate_group_impl(names, src_id, dest_id)

    def _migrate_group_impl(
        self, names: Sequence[str], src_id: int, dest_id: int
    ) -> None:
        src, dest = self.shards[src_id], self.shards[dest_id]
        streams: set[str] = set()
        for name in names:
            streams.update(src.server.query(name).tree.streams)
        # Snapshot the donor state first: lifting the movers out applies the
        # relevance rule to the source cache, purging streams only they used.
        donor_now, stores = src.server.cache.export_stream_state(streams)
        if dest.server.rounds_served < src.server.rounds_served:
            dest.server.sync_round_clock(src.server.rounds_served)
        for name in names:
            snapshot = src.server.export_query(name)
            dest.admit_migrated(snapshot)
            self._assignment[name] = dest_id
        # Adopt after the movers are registered, so the destination's own
        # relevance horizon already covers their streams.
        dest.server.cache.adopt_stream_state(donor_now, stores)
        # Restore global admission order on the destination: merge tie-breaks
        # follow registration order, which must not depend on travel history.
        dest.server.reorder(
            [name for name in self._order if name in dest.server]
        )
        src.rebuild_signature()
        self.router.invalidate_signatures((src_id, dest_id))

    @_synchronized
    def split_shard(
        self,
        shard_id: int,
        *,
        into: int = 2,
        allow_cut: bool = False,
        trigger: str = "operator",
    ) -> ElasticEvent | None:
        """Divide a shard along its stream-disjoint sub-clusters, online.

        The shard's resident population is re-clustered
        (:func:`~repro.cluster.partition.shard_split_pieces`): connected
        overlap components are free boundaries, so the default split moves
        whole components onto freshly spawned shards and no query's cost
        changes. ``allow_cut`` additionally permits label-propagation
        community cuts when the shard is one connected component (bounded
        duplicated spend in exchange for width). ``into`` caps how many
        shards the population is spread over (LPT-packed); the largest group
        stays put, the rest migrate with their cache state.

        Returns the :class:`ElasticEvent`, or ``None`` when the shard has
        nothing to split under the given policy (fewer than two residents,
        or a single connected component without ``allow_cut``).
        """
        shard = self._shard(shard_id)
        if into < 2:
            raise AdmissionError(f"a split needs at least 2 groups, got {into}")
        if len(shard) < 2:
            return None
        op_start = time.perf_counter()
        population = [(name, shard.server.query(name).tree) for name in shard.names]
        graph = build_overlap_graph(
            population, self.registry.cost_table(), store=self.substore
        )
        pieces = shard_split_pieces(graph, allow_cut=allow_cut)
        if len(pieces) <= 1:
            return None
        groups = pack_pieces(pieces, into)
        if len(groups) <= 1:
            return None
        report = partition_report(graph, groups, method="split")
        order = {name: index for index, name in enumerate(shard.names)}
        # Largest group stays resident (fewest moves); ties break to the
        # group holding the earliest-admitted query, so splits are stable.
        groups.sort(key=lambda group: (-len(group), min(order[n] for n in group)))
        new_ids: list[int] = []
        moves = 0
        for group in groups[1:]:
            new = self._spawn_shard()
            members = sorted(group, key=order.__getitem__)
            self._migrate_group(members, shard_id, new.shard_id)
            new_ids.append(new.shard_id)
            moves += len(members)
        event = ElasticEvent(
            kind="split",
            round_index=self._rounds_served,
            shard_id=shard_id,
            new_shard_ids=tuple(new_ids),
            moves=moves,
            trigger=trigger,
            detail=(
                f"{len(pieces)} pieces into {len(groups)} shards, "
                f"cut weight {report.cut_weight:.6g}"
            ),
        )
        self._log_elastic(event, duration=time.perf_counter() - op_start)
        return event

    @_synchronized
    def drain_shard(self, shard_id: int, *, trigger: str = "operator") -> ElasticEvent:
        """Migrate a shard's residents out through the router and retire it.

        Residents leave as whole overlap components (each component routed
        as one group, so co-residence — and therefore every query's cost —
        survives the move), destination-scored exactly like runtime
        admissions. On a capacity-bound cluster a drain that cannot place
        some component raises :class:`~repro.errors.AdmissionError`;
        components already migrated stay at their destinations and the
        source shard is *not* retired, leaving the cluster consistent — and
        when anything did move, a ``"drain-partial"`` event is logged before
        the raise, so the audit trail covers the migrations that happened.
        """
        shard = self._shard(shard_id)
        others = [s for sid, s in self.shards.items() if sid != shard_id]
        if not others:
            raise AdmissionError("cannot drain the only shard in the cluster")
        op_start = time.perf_counter()
        destinations: list[int] = []
        moves = 0
        if len(shard):
            population = [(name, shard.server.query(name).tree) for name in shard.names]
            graph = build_overlap_graph(
                population, self.registry.cost_table(), store=self.substore
            )
            order = {name: index for index, name in enumerate(shard.names)}
            try:
                for component in graph.components():
                    members = sorted(component, key=order.__getitem__)
                    weights: dict[str, float] = {}
                    for name in members:
                        for stream, weight in graph.weights[name].items():
                            if weight > weights.get(stream, 0.0):
                                weights[stream] = weight
                    decision = self.router.route_group(
                        members[0], weights, others, group_size=len(members)
                    )
                    self._migrate_group(members, shard_id, decision.shard_id)
                    destinations.append(decision.shard_id)
                    moves += len(members)
            except AdmissionError:
                if moves:
                    self._log_elastic(
                        ElasticEvent(
                            kind="drain-partial",
                            round_index=self._rounds_served,
                            shard_id=shard_id,
                            new_shard_ids=tuple(dict.fromkeys(destinations)),
                            moves=moves,
                            trigger=trigger,
                            detail="capacity exhausted mid-drain; shard retained",
                        ),
                        duration=time.perf_counter() - op_start,
                    )
                raise
        retired = self.shards.pop(shard_id)
        self._replans_retired += retired.server.metrics.replans
        retired.close()  # a process-mode shard's worker exits here
        self.router.invalidate_signatures((shard_id,))
        event = ElasticEvent(
            kind="drain",
            round_index=self._rounds_served,
            shard_id=shard_id,
            new_shard_ids=tuple(dict.fromkeys(destinations)),
            moves=moves,
            trigger=trigger,
        )
        self._log_elastic(event, duration=time.perf_counter() - op_start)
        return event

    @_synchronized
    def resize(
        self, n: int, *, allow_cut: bool = False, trigger: str = "operator"
    ) -> list[ElasticEvent]:
        """Grow or shrink the cluster to width ``n``, online.

        Shrinking drains the smallest shard (newest on ties) until the width
        fits. Growing splits the largest splittable shard; when no shard can
        split cleanly (every one is a single overlap component, or holds
        fewer than two queries) an empty shard is spawned instead — the
        router fills it with future cold admissions.
        """
        if n < 1:
            raise AdmissionError(f"cluster width must be >= 1, got {n}")
        events: list[ElasticEvent] = []
        while len(self.shards) > n:
            victim = min(
                self.shards, key=lambda sid: (len(self.shards[sid]), -sid)
            )
            events.append(self.drain_shard(victim, trigger=trigger))
        while len(self.shards) < n:
            split_event: ElasticEvent | None = None
            for sid in sorted(
                self.shards, key=lambda sid: (-len(self.shards[sid]), sid)
            ):
                if len(self.shards[sid]) < 2:
                    break
                split_event = self.split_shard(
                    sid, into=2, allow_cut=allow_cut, trigger=trigger
                )
                if split_event is not None:
                    break
            if split_event is None:
                shard = self._spawn_shard()
                split_event = ElasticEvent(
                    kind="grow",
                    round_index=self._rounds_served,
                    shard_id=shard.shard_id,
                    new_shard_ids=(shard.shard_id,),
                    moves=0,
                    trigger=trigger,
                    detail="spawned empty (no clean split available)",
                )
                self._log_elastic(split_event)
            events.append(split_event)
        return events

    # -- placement maintenance -------------------------------------------

    def _live_population(self) -> list[tuple[str, TreeLike]]:
        return [(name, self.query(name).tree) for name in self._order]

    @_synchronized
    def partition_report(self) -> PartitionReport:
        """Score the *current* placement against the live overlap graph."""
        population = self._live_population()
        if not population:
            raise StreamError("no queries registered in any shard")
        graph = build_overlap_graph(
            population, self.registry.cost_table(), store=self.substore
        )
        shards = [shard.names for shard in self.shards.values() if len(shard)]
        return partition_report(graph, shards, method="current")

    @_synchronized
    def rebalance(
        self,
        *,
        force: bool = False,
        min_kept_gain: float = 0.0,
        trigger: str = "operator",
    ) -> RebalanceEvent | None:
        """Re-partition the live population when placement has degraded.

        Computes a fresh overlap partition of the current residents; when it
        keeps strictly more overlap weight than the current placement (by at
        least ``min_kept_gain``), or when ``force`` is set, the population is
        re-placed along it — by *migrating only the queries whose shard
        changes*. Each mover carries its full serving state (oracle
        instance, plan, schedule, metrics, belief, cached stream items), so
        a rebalance repairs the topology without re-warming caches or
        touching the shared plan cache. Returns the event, or ``None`` when
        the current placement is already good enough.
        """
        population = self._live_population()
        if not population:
            raise StreamError("no queries registered in any shard")
        op_start = time.perf_counter()
        # One overlap graph serves both the current placement's score and
        # the candidate partition.
        graph = build_overlap_graph(
            population, self.registry.cost_table(), store=self.substore
        )
        old_report = partition_report(
            graph,
            [shard.names for shard in self.shards.values() if len(shard)],
            method="current",
        )
        candidate = partition_by_overlap(
            population,
            self.n_shards,
            self.registry.cost_table(),
            max_shard_queries=self._max_shard_queries,
            graph=graph,
        )
        improved = candidate.report.intra_weight > old_report.intra_weight + min_kept_gain
        if not (improved or force):
            return None
        # Pin each candidate piece to the live shard already holding most of
        # it (largest pieces claim first), so the migration set is minimal.
        unused = sorted(self.shards)
        target: dict[str, int] = {}
        for piece in sorted(candidate.shards, key=len, reverse=True):
            stay_counts = {
                sid: sum(1 for name in piece if self._assignment[name] == sid)
                for sid in unused
            }
            best = max(unused, key=lambda sid: (stay_counts[sid], -sid))
            unused.remove(best)
            for name in piece:
                target[name] = best
        groups: dict[tuple[int, int], list[str]] = {}
        for name in self._order:
            src, dest = self._assignment[name], target[name]
            if src != dest:
                groups.setdefault((src, dest), []).append(name)
        for (src, dest), names in groups.items():
            self._migrate_group(names, src, dest)
        moves = sum(len(names) for names in groups.values())
        # Wholesale placement change: every cached router signature is stale.
        self.router.invalidate_signatures()
        event = RebalanceEvent(
            old_report=old_report, new_report=candidate.report, moves=moves
        )
        self.rebalances.append(event)
        self._log_elastic(
            ElasticEvent(
                kind="rebalance",
                round_index=self._rounds_served,
                shard_id=-1,
                new_shard_ids=tuple(sorted({dest for _, dest in groups})),
                moves=moves,
                trigger=trigger,
                detail=event.describe(),
            ),
            duration=time.perf_counter() - op_start,
        )
        return event

    # -- automatic elasticity --------------------------------------------

    def _auto_elastic(self) -> list[ElasticEvent]:
        """Evaluate the :class:`ElasticPolicy` once (called after a batch)."""
        policy = self.elastic
        assert policy is not None
        self._batches_since_check += 1
        if self._batches_since_check < policy.check_every:
            return []
        self._batches_since_check = 0
        events: list[ElasticEvent] = []
        # Retire empty shards first (newest first), down to the floor.
        if policy.drain_empty:
            for sid in sorted(self.shards, reverse=True):
                if len(self.shards) <= max(policy.min_shards, 1):
                    break
                if len(self.shards[sid]) == 0:
                    events.append(self.drain_shard(sid, trigger="auto:empty"))
        total = len(self)
        # Consolidate around the occupancy target: when the population would
        # fit comfortably in fewer shards, retire the smallest one per check
        # (gradual, so a transient dip does not collapse the cluster).
        if total and policy.target_shard_queries > 0:
            desired = max(
                max(policy.min_shards, 1),
                -(-total // policy.target_shard_queries),  # ceil
            )
            if len(self.shards) > desired:
                victim = min(
                    self.shards, key=lambda sid: (len(self.shards[sid]), -sid)
                )
                # Hysteresis: one shard over the target width is tolerated
                # unless the victim is well under half-full, so the
                # consolidate and overload triggers cannot ping-pong one
                # query group between topologies on consecutive batches.
                decisive = (
                    len(self.shards) - desired >= 2
                    or len(self.shards[victim]) * 2 < policy.target_shard_queries
                )
                if decisive:
                    mark = len(self.elastic_log)
                    try:
                        events.append(
                            self.drain_shard(victim, trigger="auto:consolidate")
                        )
                    except AdmissionError:
                        # No destination had room for every component; keep
                        # the shard but surface any partial migration.
                        events.extend(self.elastic_log[mark:])
        width = len(self.shards)
        ideal = total / width if width else 0.0
        # Drain the most underloaded shard.
        if total and policy.drain_below > 0.0 and width > max(policy.min_shards, 1):
            active = [sid for sid in self.shards if len(self.shards[sid])]
            if len(active) > 1:
                victim = min(active, key=lambda sid: (len(self.shards[sid]), -sid))
                if len(self.shards[victim]) < policy.drain_below * ideal:
                    mark = len(self.elastic_log)
                    try:
                        events.append(
                            self.drain_shard(victim, trigger="auto:underload")
                        )
                    except AdmissionError:
                        # No destination had room for every component; keep
                        # the shard but surface any partial migration.
                        events.extend(self.elastic_log[mark:])
        # Split the most overloaded shard — unless this check already
        # drained (one width change per check keeps a drain's fallout from
        # immediately bouncing queries back out of the destination).
        width = len(self.shards)
        ideal = total / width if width else 0.0
        drained = any(
            event.kind.startswith("drain") and event.moves for event in events
        )
        if total and not drained and width < policy.max_shards:
            busiest = max(
                self.shards, key=lambda sid: (len(self.shards[sid]), -sid)
            )
            size = len(self.shards[busiest])
            overloaded = size > policy.split_above * ideal or (
                policy.target_shard_queries > 0 and size > policy.target_shard_queries
            )
            if size >= policy.min_split_size and overloaded:
                if policy.target_shard_queries > 0:
                    wanted = -(-size // policy.target_shard_queries)  # ceil
                else:
                    wanted = 2
                into = max(2, min(wanted, policy.max_shards - width + 1))
                event = self.split_shard(
                    busiest,
                    into=into,
                    allow_cut=policy.allow_cut_splits,
                    trigger="auto:overload",
                )
                if event is not None:
                    events.append(event)
        # Rebalance on churn, drift or cut-spend signals.
        due: list[str] = []
        if policy.churn_every and self._churn - self._churn_mark >= policy.churn_every:
            due.append("churn")
        replans_total = self._replans_retired + sum(
            shard.server.metrics.replans for shard in self.shards.values()
        )
        if (
            policy.replans_every
            and replans_total - self._replans_mark >= policy.replans_every
        ):
            due.append("drift")
        if policy.min_kept_fraction > 0.0 and total > 1 and len(self.active_shards()) > 1:
            if self.partition_report().kept_fraction < policy.min_kept_fraction:
                due.append("cut-spend")
        if due and total:
            reason = "auto:" + "+".join(due)
            self._churn_mark = self._churn
            self._replans_mark = replans_total
            if self.rebalance(trigger=reason) is not None:
                events.append(self.elastic_log[-1])
        return events

    # -- lifecycle -------------------------------------------------------

    @_synchronized
    def close(self) -> None:
        """Release shard resources; mandatory for ``executor="process"``.

        Thread-mode shards hold nothing that needs releasing (close is a
        no-op there); process-mode shards shut their worker processes down.
        Idempotent, and the cluster object stays inspectable afterwards —
        only execution and migration calls require live shards.
        """
        for shard in self.shards.values():
            shard.close()

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability ---------------------------------------------------

    def shard_metrics(self) -> dict[int, ServiceMetrics]:
        return {
            shard_id: shard.server.metrics for shard_id, shard in self.shards.items()
        }

    def describe(self) -> str:
        lines = [
            f"cluster: {len(self)} queries on {len(self.active_shards())}/"
            f"{self.n_shards} shards, "
            f"plan-cache hit rate "
            + (
                f"{self.plan_cache.hit_rate:.1%}"
                if self.plan_cache is not None
                else "n/a"
            )
            + f", router overlap hits {self.router.overlap_hit_rate:.1%}, "
            f"{len(self.rebalances)} rebalances, "
            f"{self.splits} splits / {self.drains} drains",
        ]
        for shard_id in sorted(self.shards):
            shard = self.shards[shard_id]
            if not len(shard):
                continue
            lines.append(
                f"  shard {shard_id}: {len(shard)} queries over "
                f"{len(shard.streams)} streams, "
                f"{shard.server.metrics.rounds} rounds served"
            )
        return "\n".join(lines)
