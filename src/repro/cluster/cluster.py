"""The sharded serving cluster: partitioned shards behind one front door.

:class:`ClusterServer` is the scale-out layer above
:class:`~repro.service.server.QueryServer`: the query population is
partitioned by stream overlap (:mod:`repro.cluster.partition`) into shards,
each shard serves its residents on its own :class:`QueryServer` (own stream
cache, own adaptive controller), and a :class:`~repro.cluster.router.ShardRouter`
admits runtime arrivals to the shard whose streams they already share.
Sharing stays *within* a shard — where the overlap graph says it actually
exists — while shards stay independent, so they batch concurrently on a
thread pool and a churn event (admission, departure, re-plan) invalidates
one shard's merged plan instead of the whole population's.

All shards share one thread-safe :class:`~repro.service.plan_cache.PlanCache`,
so a canonical query shape pays its scheduling cost once across the entire
cluster, not once per shard.

:meth:`ClusterServer.run_batch` fans the round loop out over the shards and
aggregates the per-shard reports into one :class:`ClusterReport`;
:meth:`ClusterServer.rebalance` re-partitions the live population when churn
or drift has degraded the placement.
"""

from __future__ import annotations

import functools
import os
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.adaptive.policy import AdaptivePolicy
from repro.cluster.partition import (
    Partition,
    PartitionReport,
    TreeLike,
    build_overlap_graph,
    partition_by_overlap,
    partition_report,
    random_partition,
)
from repro.cluster.router import ShardRouter
from repro.cluster.shard import ShardServer
from repro.core.heuristics.base import Scheduler
from repro.engine.executor import BernoulliOracle, ExecutionResult, LeafOracle
from repro.errors import AdmissionError, StreamError
from repro.service.metrics import ServiceMetrics
from repro.service.plan_cache import PlanCache
from repro.service.server import DEFAULT_SCHEDULER, BatchReport, QueryServer
from repro.streams.registry import StreamRegistry

__all__ = ["ClusterReport", "ClusterServer", "RebalanceEvent", "default_oracle_factory"]


def _synchronized(method):
    """Run ``method`` under the cluster's reentrant lock."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


def default_oracle_factory(seed: int) -> Callable[[str], LeafOracle]:
    """Deterministic per-query Bernoulli oracles: seed mixed with the name.

    Because the oracle is derived from the query *name* (not from admission
    order or shard placement), a population served by any shard layout —
    including the unsharded single server — draws identical outcome streams,
    which is what makes sharded-vs-unsharded runs exactly comparable.
    """

    def factory(name: str) -> LeafOracle:
        return BernoulliOracle(
            seed=(seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0x7FFFFFFF
        )

    return factory


@dataclass(frozen=True)
class RebalanceEvent:
    """One re-partitioning of the live population."""

    old_report: PartitionReport
    new_report: PartitionReport
    #: Queries whose shard changed.
    moves: int

    def describe(self) -> str:
        return (
            f"rebalance: kept overlap {self.old_report.kept_fraction:.1%} -> "
            f"{self.new_report.kept_fraction:.1%}, {self.moves} queries moved, "
            f"{self.old_report.n_shards} -> {self.new_report.n_shards} shards"
        )


@dataclass
class ClusterReport:
    """Aggregate of one concurrent batch across every active shard."""

    rounds: int
    workers: int
    wall_seconds: float
    shard_reports: dict[int, BatchReport]
    shard_seconds: dict[int, float]
    shard_sizes: dict[int, int]
    plan_cache_hit_rate: float
    router_overlap_hit_rate: float
    rebalances: int

    # -- aggregates ------------------------------------------------------

    @property
    def n_queries(self) -> int:
        return sum(self.shard_sizes.values())

    @property
    def evals(self) -> int:
        """Query evaluations performed: residents x rounds, summed over shards."""
        return self.rounds * self.n_queries

    @property
    def throughput(self) -> float:
        """Query evaluations per wall-clock second of the concurrent batch."""
        return self.evals / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    @property
    def total_cost(self) -> float:
        return sum(report.total_cost for report in self.shard_reports.values())

    @property
    def per_query_cost(self) -> dict[str, float]:
        merged: dict[str, float] = {}
        for report in self.shard_reports.values():
            merged.update(report.per_query_cost)
        return merged

    @property
    def per_query_true_rate(self) -> dict[str, float]:
        merged: dict[str, float] = {}
        for report in self.shard_reports.values():
            merged.update(report.per_query_true_rate)
        return merged

    @property
    def probes(self) -> int:
        return sum(report.probes for report in self.shard_reports.values())

    @property
    def free_probes(self) -> int:
        return sum(report.free_probes for report in self.shard_reports.values())

    @property
    def items_fetched(self) -> int:
        return sum(report.items_fetched for report in self.shard_reports.values())

    @property
    def items_saved(self) -> int:
        return sum(report.items_saved for report in self.shard_reports.values())

    @property
    def replans(self) -> int:
        return sum(report.replans for report in self.shard_reports.values())

    def summary(self) -> str:
        busiest = max(self.shard_seconds.values(), default=0.0)
        lines = [
            f"cluster batch: {self.rounds} rounds x {self.n_queries} queries on "
            f"{len(self.shard_reports)} shards ({self.workers} workers)",
            f"  wall {self.wall_seconds:.3f}s (busiest shard {busiest:.3f}s), "
            f"{self.throughput:,.0f} evals/s",
            f"  total cost {self.total_cost:.6g}, probes {self.probes} "
            f"({self.free_probes} free), items {self.items_fetched} fetched / "
            f"{self.items_saved} saved",
            f"  plan-cache hit rate {self.plan_cache_hit_rate:.1%}, "
            f"router overlap hits {self.router_overlap_hit_rate:.1%}, "
            f"{self.replans} replans, {self.rebalances} rebalances",
        ]
        for shard_id in sorted(self.shard_reports):
            report = self.shard_reports[shard_id]
            lines.append(
                f"  shard {shard_id}: {self.shard_sizes[shard_id]} queries, "
                f"cost {report.total_cost:.6g}, "
                f"{self.shard_seconds[shard_id]:.3f}s"
            )
        return "\n".join(lines)


class ClusterServer:
    """A fixed-width cluster of stream-overlap shards behind a router.

    Parameters
    ----------
    registry:
        The shared sensing environment. Every shard builds its own cache
        over the same (thread-safe, memoized) source tapes, so two shards
        windowing one cut stream read identical values.
    n_shards:
        Cluster width. Shards may stay empty when the population has fewer
        overlap components than ``n_shards``.
    workers:
        Thread-pool width for concurrent shard batches; ``None`` sizes to
        ``min(active shards, cpu count)``, ``1`` runs shards serially.
    scheduler, shared_plan, warmup, adaptive:
        Forwarded to every shard's :class:`QueryServer`; ``adaptive`` must be
        an :class:`~repro.adaptive.AdaptivePolicy` (pure config — each shard
        builds its own controller) or ``None``.
    plan_cache:
        Capacity of the *cluster-wide* plan cache shared by all shards
        (a :class:`PlanCache` instance is used as-is; ``None``/``0``
        disables plan caching everywhere).
    oracle_factory:
        ``name -> LeafOracle`` for admissions without an explicit oracle;
        the default draws per-query Bernoulli oracles deterministically from
        ``seed`` and the query name (placement-independent outcomes).
    max_shard_queries:
        Per-shard admission capacity, enforced by the router and the
        partitioner.
    """

    def __init__(
        self,
        registry: StreamRegistry,
        *,
        n_shards: int = 4,
        workers: int | None = None,
        scheduler: str | Scheduler = DEFAULT_SCHEDULER,
        plan_cache: PlanCache | int | None = 256,
        shared_plan: bool = True,
        warmup: int = 64,
        adaptive: AdaptivePolicy | None = None,
        oracle_factory: Callable[[str], LeafOracle] | None = None,
        max_shard_queries: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_shards < 1:
            raise AdmissionError(f"need at least one shard, got {n_shards}")
        if adaptive is not None and not isinstance(adaptive, AdaptivePolicy):
            raise AdmissionError(
                "adaptive must be an AdaptivePolicy (each shard builds its own "
                f"controller), got {type(adaptive).__name__}"
            )
        self.registry = registry
        self.n_shards = n_shards
        self.workers = workers
        self.seed = seed
        self._scheduler = scheduler
        self._shared_plan = shared_plan
        self._warmup = warmup
        self._adaptive = adaptive
        self._max_shard_queries = max_shard_queries
        if isinstance(plan_cache, PlanCache):
            self.plan_cache: PlanCache | None = plan_cache
        elif plan_cache:
            self.plan_cache = PlanCache(capacity=int(plan_cache))
        else:
            self.plan_cache = None
        self.oracle_factory = (
            oracle_factory if oracle_factory is not None else default_oracle_factory(seed)
        )
        self.router = ShardRouter(
            costs=registry.cost_table(), max_shard_queries=max_shard_queries
        )
        self.shards: list[ShardServer] = [
            self._new_shard(shard_id) for shard_id in range(n_shards)
        ]
        self._assignment: dict[str, int] = {}
        self._order: list[str] = []
        self.rebalances: list[RebalanceEvent] = []
        # Cluster-level mutations (admission, departure, rebalance) and
        # batches serialize on one reentrant lock, mirroring QueryServer's
        # contract: background admission threads are safe, and a rebalance
        # can never swap the shard set out from under an in-flight batch.
        # Within a batch the shards still run concurrently on the pool.
        self._lock = threading.RLock()

    def _new_shard(self, shard_id: int) -> ShardServer:
        server = QueryServer(
            self.registry,
            scheduler=self._scheduler,
            plan_cache=self.plan_cache,
            shared_plan=self._shared_plan,
            warmup=self._warmup,
            adaptive=self._adaptive,
        )
        return ShardServer(shard_id, server, self.registry.cost_table())

    # -- population ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, name: str) -> bool:
        return name in self._assignment

    @property
    def registered(self) -> tuple[str, ...]:
        """All resident query names, in cluster admission order."""
        return tuple(self._order)

    def shard_of(self, name: str) -> int:
        try:
            return self._assignment[name]
        except KeyError:
            raise AdmissionError(f"no query named {name!r} is registered") from None

    def query(self, name: str):
        return self.shards[self.shard_of(name)].server.query(name)

    def active_shards(self) -> list[ShardServer]:
        return [shard for shard in self.shards if len(shard)]

    @_synchronized
    def register(
        self, name: str, tree: TreeLike, *, oracle: LeafOracle | None = None
    ) -> int:
        """Admit one query through the router; returns the chosen shard id."""
        if name in self._assignment:
            raise AdmissionError(f"query {name!r} is already registered")
        decision = self.router.route(name, tree, self.shards)
        shard = self.shards[decision.shard_id]
        shard.register(
            name, tree, oracle=oracle if oracle is not None else self.oracle_factory(name)
        )
        self.router.record(decision)
        self._assignment[name] = decision.shard_id
        self._order.append(name)
        return decision.shard_id

    @_synchronized
    def register_population(
        self,
        population: Sequence[tuple[str, TreeLike]],
        *,
        partition: Partition | None = None,
        method: str = "overlap",
    ) -> Partition:
        """Bulk-admit a population along a computed (or given) partition.

        ``method="overlap"`` runs the stream-overlap partitioner,
        ``method="random"`` the overlap-blind baseline. Piece ``i`` of the
        partition lands on shard ``i``; queries register in population order
        within each shard, so a 1-shard cluster is probe-for-probe identical
        to the unsharded :class:`QueryServer`.
        """
        if partition is None:
            costs = self.registry.cost_table()
            if method == "overlap":
                partition = partition_by_overlap(
                    population,
                    self.n_shards,
                    costs,
                    max_shard_queries=self._max_shard_queries,
                )
            elif method == "random":
                partition = random_partition(
                    population, self.n_shards, costs, seed=self.seed
                )
            else:
                raise AdmissionError(
                    f"unknown partition method {method!r}; use 'overlap' or 'random'"
                )
        if partition.n_shards > self.n_shards:
            raise AdmissionError(
                f"partition has {partition.n_shards} shards, cluster only "
                f"{self.n_shards}"
            )
        trees = dict(population)
        order = {name: i for i, (name, _) in enumerate(population)}
        for shard_id, members in enumerate(partition.shards):
            shard = self.shards[shard_id]
            for name in sorted(members, key=order.__getitem__):
                if name in self._assignment:
                    raise AdmissionError(f"query {name!r} is already registered")
                shard.register(name, trees[name], oracle=self.oracle_factory(name))
                self._assignment[name] = shard_id
                self._order.append(name)
        return partition

    @_synchronized
    def deregister(self, name: str) -> None:
        shard_id = self.shard_of(name)
        self.shards[shard_id].deregister(name)
        del self._assignment[name]
        self._order.remove(name)

    # -- execution -------------------------------------------------------

    def _effective_workers(self, active: int) -> int:
        if self.workers is not None:
            return max(1, self.workers)
        return max(1, min(active, os.cpu_count() or 1))

    @_synchronized
    def step(self) -> dict[str, ExecutionResult]:
        """One concurrent round on every active shard; merged per-query results."""
        active = self.active_shards()
        if not active:
            raise StreamError("no queries registered in any shard")
        workers = self._effective_workers(len(active))
        if workers == 1 or len(active) == 1:
            round_results = [shard.step() for shard in active]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                round_results = list(pool.map(lambda shard: shard.step(), active))
        merged: dict[str, ExecutionResult] = {}
        for results in round_results:
            merged.update(results)
        return merged

    @_synchronized
    def run_batch(self, rounds: int, *, engine: str = "scalar") -> ClusterReport:
        """Batch every active shard concurrently and aggregate the reports."""
        active = self.active_shards()
        if not active:
            raise StreamError("no queries registered in any shard")
        workers = self._effective_workers(len(active))
        start = time.perf_counter()
        if workers == 1 or len(active) == 1:
            reports = [shard.run_batch(rounds, engine=engine) for shard in active]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                reports = list(
                    pool.map(lambda shard: shard.run_batch(rounds, engine=engine), active)
                )
        wall = time.perf_counter() - start
        return ClusterReport(
            rounds=rounds,
            workers=workers,
            wall_seconds=wall,
            shard_reports={
                shard.shard_id: report for shard, report in zip(active, reports)
            },
            shard_seconds={
                shard.shard_id: shard.last_batch_seconds for shard in active
            },
            shard_sizes={shard.shard_id: len(shard) for shard in active},
            plan_cache_hit_rate=(
                self.plan_cache.hit_rate if self.plan_cache is not None else 0.0
            ),
            router_overlap_hit_rate=self.router.overlap_hit_rate,
            rebalances=len(self.rebalances),
        )

    # -- placement maintenance -------------------------------------------

    def _live_population(self) -> list[tuple[str, TreeLike]]:
        return [(name, self.query(name).tree) for name in self._order]

    @_synchronized
    def partition_report(self) -> PartitionReport:
        """Score the *current* placement against the live overlap graph."""
        population = self._live_population()
        if not population:
            raise StreamError("no queries registered in any shard")
        graph = build_overlap_graph(population, self.registry.cost_table())
        shards = [shard.names for shard in self.shards if len(shard)]
        return partition_report(graph, shards, method="current")

    @_synchronized
    def rebalance(
        self, *, force: bool = False, min_kept_gain: float = 0.0
    ) -> RebalanceEvent | None:
        """Re-partition the live population when placement has degraded.

        Computes a fresh overlap partition of the current residents; when it
        keeps strictly more overlap weight than the current placement (by at
        least ``min_kept_gain``), or when ``force`` is set, the cluster is
        rebuilt along it: fresh shard servers (fresh caches — they re-warm),
        every query re-registered on its new shard with its *same* oracle
        instance (outcome streams continue seamlessly) and its admission
        scheduler. Returns the event, or ``None`` when the current placement
        is already good enough.
        """
        population = self._live_population()
        if not population:
            raise StreamError("no queries registered in any shard")
        # One overlap graph serves both the current placement's score and
        # the candidate partition.
        graph = build_overlap_graph(population, self.registry.cost_table())
        old_report = partition_report(
            graph,
            [shard.names for shard in self.shards if len(shard)],
            method="current",
        )
        candidate = partition_by_overlap(
            population,
            self.n_shards,
            self.registry.cost_table(),
            max_shard_queries=self._max_shard_queries,
            graph=graph,
        )
        improved = candidate.report.intra_weight > old_report.intra_weight + min_kept_gain
        if not (improved or force):
            return None
        oracles = {name: self.query(name).oracle for name in self._order}
        schedulers = {
            name: self.query(name).plan.scheduler_name for name in self._order
        }
        trees = dict(population)
        old_assignment = dict(self._assignment)
        self.shards = [self._new_shard(shard_id) for shard_id in range(self.n_shards)]
        self._assignment = {}
        order, self._order = self._order, []
        placement = candidate.shard_of()
        for name in order:
            shard_id = placement[name]
            self.shards[shard_id].register(
                name, trees[name], oracle=oracles[name], scheduler=schedulers[name]
            )
            self._assignment[name] = shard_id
            self._order.append(name)
        moves = sum(
            1 for name in order if old_assignment[name] != self._assignment[name]
        )
        event = RebalanceEvent(
            old_report=old_report, new_report=candidate.report, moves=moves
        )
        self.rebalances.append(event)
        return event

    # -- observability ---------------------------------------------------

    def shard_metrics(self) -> dict[int, ServiceMetrics]:
        return {shard.shard_id: shard.server.metrics for shard in self.shards}

    def describe(self) -> str:
        lines = [
            f"cluster: {len(self)} queries on {len(self.active_shards())}/"
            f"{self.n_shards} shards, "
            f"plan-cache hit rate "
            + (
                f"{self.plan_cache.hit_rate:.1%}"
                if self.plan_cache is not None
                else "n/a"
            )
            + f", router overlap hits {self.router.overlap_hit_rate:.1%}, "
            f"{len(self.rebalances)} rebalances",
        ]
        for shard in self.shards:
            if not len(shard):
                continue
            lines.append(
                f"  shard {shard.shard_id}: {len(shard)} queries over "
                f"{len(shard.streams)} streams, "
                f"{shard.server.metrics.rounds} rounds served"
            )
        return "\n".join(lines)
