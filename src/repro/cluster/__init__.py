"""Sharded concurrent serving cluster.

One :class:`~repro.service.QueryServer` scales until its global shared plan
— merged across the *whole* population — becomes the bottleneck: the merge
is O(probes x queries), and every admission, departure or re-plan
invalidates it for everyone. This package splits the population where the
cost model says sharing stops paying:

* :mod:`~repro.cluster.partition` — the query<->stream overlap graph,
  connected-component clustering with LPT packing and label-propagation
  refinement, and reports explaining what a partition keeps, cuts and
  duplicates;
* :mod:`~repro.cluster.shard` — one shard: a (thread-safe) QueryServer plus
  the shard's stream signature and batch timings;
* :mod:`~repro.cluster.router` — the front door scoring each admission
  against every shard's signature;
* :mod:`~repro.cluster.cluster` — :class:`ClusterServer`: concurrent shard
  batches on a thread pool, one cluster-wide plan cache, elastic width
  (online ``split_shard``/``drain_shard``/``resize`` with full serving-state
  migration, auto-managed by an :class:`~repro.adaptive.ElasticPolicy`),
  online ``rebalance()``, and :class:`ClusterReport` aggregation.
"""

from repro.cluster.cluster import (
    ClusterReport,
    ClusterServer,
    ElasticEvent,
    RebalanceEvent,
    default_oracle_factory,
)
from repro.cluster.partition import (
    OverlapGraph,
    Partition,
    PartitionReport,
    build_overlap_graph,
    pack_pieces,
    partition_by_overlap,
    partition_report,
    random_partition,
    shard_split_pieces,
    stream_weight_vector,
)
from repro.cluster.router import RoutingDecision, ShardRouter
from repro.cluster.shard import ShardServer
from repro.cluster.worker import RemotePlanCache, ShardWorkerProxy, WorkerConfig

__all__ = [
    "OverlapGraph",
    "Partition",
    "PartitionReport",
    "build_overlap_graph",
    "partition_by_overlap",
    "partition_report",
    "random_partition",
    "stream_weight_vector",
    "ShardServer",
    "ShardRouter",
    "RoutingDecision",
    "ClusterServer",
    "ClusterReport",
    "ElasticEvent",
    "RebalanceEvent",
    "default_oracle_factory",
    "pack_pieces",
    "shard_split_pieces",
    "WorkerConfig",
    "ShardWorkerProxy",
    "RemotePlanCache",
]
