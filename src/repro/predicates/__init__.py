"""Predicate substrate: window operators, predicates, probability estimation."""

from repro.predicates.estimation import estimate_from_source, leaves_from_predicates
from repro.predicates.predicate import COMPARATORS, Comparator, Predicate
from repro.predicates.windows import WINDOW_OPS, apply_window_op, register_window_op

__all__ = [
    "Predicate",
    "Comparator",
    "COMPARATORS",
    "WINDOW_OPS",
    "apply_window_op",
    "register_window_op",
    "estimate_from_source",
    "leaves_from_predicates",
]
