"""Window aggregation operators applied to stream windows.

The paper's leaf predicates apply an operator to a time-window of a stream —
``AVG(A, 5) < 70``, ``MAX(B, 4) > 100`` — or read the latest item directly
(``C < 3``). This module is the registry of those operators: each takes the
window's values (newest last) and returns a scalar.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import StreamError

__all__ = ["WINDOW_OPS", "apply_window_op", "register_window_op"]


def _last(values: np.ndarray) -> float:
    return float(values[-1])


def _range(values: np.ndarray) -> float:
    return float(np.max(values) - np.min(values))


#: Operator name -> aggregation function over a 1-D window array (newest last).
WINDOW_OPS: dict[str, Callable[[np.ndarray], float]] = {
    "LAST": _last,
    "AVG": lambda v: float(np.mean(v)),
    "MEAN": lambda v: float(np.mean(v)),
    "MAX": lambda v: float(np.max(v)),
    "MIN": lambda v: float(np.min(v)),
    "SUM": lambda v: float(np.sum(v)),
    "MEDIAN": lambda v: float(np.median(v)),
    "STD": lambda v: float(np.std(v)),
    "RANGE": _range,
}


def register_window_op(name: str, fn: Callable[[np.ndarray], float]) -> None:
    """Add a custom aggregation operator (uppercase name)."""
    key = name.upper()
    if key in WINDOW_OPS:
        raise StreamError(f"window operator {key!r} already registered")
    WINDOW_OPS[key] = fn


def apply_window_op(name: str, values: np.ndarray) -> float:
    """Apply operator ``name`` to a window of values (newest last)."""
    key = name.upper()
    try:
        fn = WINDOW_OPS[key]
    except KeyError:
        known = ", ".join(sorted(WINDOW_OPS))
        raise StreamError(f"unknown window operator {name!r}; known: {known}") from None
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise StreamError("window values must be a non-empty 1-D array")
    return fn(values)
