"""Estimating predicate success probabilities from data.

The scheduling algorithms need each leaf's success probability ``p_j``; the
paper assumes these "can be estimated based on historical traces obtained
from previous query evaluations". Two estimators:

* :func:`estimate_from_source` — offline profiling: slide the predicate's
  window across a source tape and count successes (what a deployment would
  do with recorded sensor logs);
* :func:`leaves_from_predicates` — convenience: profile a set of predicates
  against a registry and emit scheduling leaves.

Both return Beta-smoothed estimates (see
:func:`repro.streams.traces.estimate_probability`), keeping probabilities in
the open interval (0, 1) as the ratio heuristics require.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.leaf import Leaf
from repro.errors import StreamError
from repro.predicates.predicate import Predicate
from repro.streams.registry import StreamRegistry
from repro.streams.sources import Source
from repro.streams.traces import estimate_probability

__all__ = ["estimate_from_source", "leaves_from_predicates"]


def estimate_from_source(
    predicate: Predicate,
    source: Source,
    *,
    n_windows: int = 256,
    start: int = 0,
    stride: int = 1,
    prior: tuple[float, float] = (1.0, 1.0),
) -> float:
    """Empirical success probability of ``predicate`` over a source tape.

    Evaluates the predicate on ``n_windows`` windows; window ``k`` (for
    ``k = 0..n_windows-1``) covers the ``predicate.window`` consecutive items
    ending at absolute tape index ``start + predicate.window - 1 + k * stride``,
    so the tape must hold at least
    ``start + predicate.window + (n_windows - 1) * stride`` items. A finite
    tape (e.g. :class:`~repro.streams.sources.ReplaySource`) that runs out
    mid-profile raises a :class:`~repro.errors.StreamError` naming the
    exhausted window.
    """
    if n_windows < 1:
        raise StreamError(f"need at least one window, got {n_windows}")
    if start < 0:
        raise StreamError(f"start must be >= 0, got {start}")
    if stride < 1:
        raise StreamError(f"stride must be >= 1, got {stride}")
    successes = 0
    end = start + predicate.window - 1
    for k in range(n_windows):
        try:
            values = source.window(end, predicate.window)
        except (IndexError, StreamError) as exc:
            # Finite tapes signal exhaustion as StreamError (ReplaySource) or
            # a leaked IndexError (ad-hoc sources); either way, re-raise with
            # the profiling context so the caller sees which window failed.
            raise StreamError(
                f"source tape exhausted while profiling {predicate.text()}: "
                f"window {k + 1}/{n_windows} ends at index {end} ({exc})"
            ) from exc
        if predicate.evaluate(values):
            successes += 1
        end += stride
    return estimate_probability(successes, n_windows, prior=prior)


def leaves_from_predicates(
    predicates: Sequence[Predicate],
    registry: StreamRegistry,
    *,
    n_windows: int = 256,
    prior: tuple[float, float] = (1.0, 1.0),
) -> list[Leaf]:
    """Profile each predicate against its registered source; emit leaves."""
    leaves = []
    for predicate in predicates:
        source = registry.source(predicate.stream)
        prob = estimate_from_source(predicate, source, n_windows=n_windows, prior=prior)
        leaves.append(predicate.to_leaf(prob))
    return leaves
