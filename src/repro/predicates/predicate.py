"""Boolean predicates over stream windows.

A :class:`Predicate` is the *semantic* counterpart of a scheduling
:class:`~repro.core.leaf.Leaf`: ``AVG(HR, 5) > 100`` names the stream, the
window operator, the window length and the comparison. The engine evaluates
predicates on real (simulated) data; the scheduler only needs the derived
``Leaf`` (stream, items = window, estimated probability), which
:meth:`Predicate.to_leaf` produces.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.leaf import Leaf
from repro.errors import StreamError
from repro.predicates.windows import apply_window_op

__all__ = ["Comparator", "Predicate", "COMPARATORS"]


#: Comparator symbol -> binary predicate on floats.
COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class Comparator:
    """Namespaced constants for the comparison symbols."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="


@dataclass(frozen=True, slots=True)
class Predicate:
    """``op(stream, window) cmp threshold``.

    ``op="LAST"`` with ``window=1`` renders without the operator, matching
    the paper's ``C < 3`` notation.
    """

    stream: str
    op: str
    window: int
    cmp: str
    threshold: float

    def __post_init__(self) -> None:
        if not self.stream:
            raise StreamError("predicate stream must be non-empty")
        if self.window < 1:
            raise StreamError(f"window must be >= 1, got {self.window}")
        if self.cmp not in COMPARATORS:
            known = ", ".join(COMPARATORS)
            raise StreamError(f"unknown comparator {self.cmp!r}; known: {known}")
        object.__setattr__(self, "op", self.op.upper())
        object.__setattr__(self, "threshold", float(self.threshold))

    @property
    def items_required(self) -> int:
        """Number of newest items the predicate reads (the leaf's ``d``)."""
        return self.window

    def evaluate(self, values: np.ndarray) -> bool:
        """Evaluate on a window of values (newest last, length >= window)."""
        values = np.asarray(values, dtype=float)
        if values.size < self.window:
            raise StreamError(
                f"predicate needs {self.window} items, got {values.size}"
            )
        score = apply_window_op(self.op, values[-self.window :])
        return COMPARATORS[self.cmp](score, self.threshold)

    def text(self) -> str:
        """Render in the paper's / DSL's syntax, e.g. ``AVG(A,5) < 70``."""
        if self.op == "LAST" and self.window == 1:
            lhs = self.stream
        else:
            lhs = f"{self.op}({self.stream},{self.window})"
        threshold = f"{self.threshold:g}"
        return f"{lhs} {self.cmp} {threshold}"

    def to_leaf(self, prob: float) -> Leaf:
        """The scheduling leaf for this predicate with estimated probability ``prob``."""
        return Leaf(stream=self.stream, items=self.window, prob=prob, label=self.text())
