"""Core PAOTR machinery: trees, schedules, cost evaluators, optimal algorithms.

This subpackage implements the paper's primary contribution. See
:mod:`repro.core.tree` for the data model, :mod:`repro.core.cost` for the
analytic evaluators, :mod:`repro.core.andtree_optimal` /
:mod:`repro.core.dnf_optimal` for the optimal algorithms, and
:mod:`repro.core.heuristics` for the polynomial heuristics of §IV-D.
"""

from repro.core.compile import CompiledSchedule, compile_schedule
from repro.core.cost import (
    DnfPrefixCost,
    and_tree_cost,
    dnf_schedule_cost,
    expected_stream_items,
    item_acquisition_probabilities,
    schedule_cost,
)
from repro.core.exact import exact_schedule_cost
from repro.core.leaf import Leaf
from repro.core.montecarlo import MonteCarloResult, monte_carlo_cost
from repro.core.schedule import (
    Schedule,
    depth_first_blocks,
    identity_schedule,
    is_depth_first,
    make_depth_first,
    random_schedule,
    validate_schedule,
)
from repro.core.tree import AndNode, AndTree, DnfTree, LeafNode, Node, OrNode, QueryTree
from repro.core.andtree_optimal import (
    algorithm1_order,
    brute_force_and_tree,
    read_once_order,
    smith_ratio,
)

__all__ = [
    "Leaf",
    "AndTree",
    "DnfTree",
    "QueryTree",
    "AndNode",
    "OrNode",
    "LeafNode",
    "Node",
    "Schedule",
    "validate_schedule",
    "identity_schedule",
    "random_schedule",
    "is_depth_first",
    "depth_first_blocks",
    "make_depth_first",
    "and_tree_cost",
    "dnf_schedule_cost",
    "schedule_cost",
    "CompiledSchedule",
    "compile_schedule",
    "DnfPrefixCost",
    "item_acquisition_probabilities",
    "expected_stream_items",
    "exact_schedule_cost",
    "monte_carlo_cost",
    "MonteCarloResult",
    "algorithm1_order",
    "read_once_order",
    "smith_ratio",
    "brute_force_and_tree",
]
