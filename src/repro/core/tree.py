"""Query-tree data structures: AND-trees, DNF trees, and general AND-OR trees.

Three levels of generality, mirroring the paper:

* :class:`AndTree` — a single AND operator over leaves (Section III).
* :class:`DnfTree` — an OR of AND nodes (Section IV).
* :class:`QueryTree` — an arbitrary rooted AND-OR tree (the general PAOTR
  setting, whose complexity is open even in the read-once case). A
  :class:`QueryTree` can report whether it is an AND-tree / DNF tree and
  convert to the specialized representations; a general tree can also be
  *expanded* to DNF by distributing AND over OR (with a size guard, since the
  expansion can be exponential).

Every tree carries its stream cost table ``costs`` (cost per data item,
``c(S_k)`` in the paper), because a PAOTR instance is the pair
(tree, stream costs).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence, Union

from repro.core.leaf import Leaf
from repro.errors import InvalidTreeError

__all__ = [
    "AndTree",
    "DnfTree",
    "QueryTree",
    "LeafNode",
    "AndNode",
    "OrNode",
    "Node",
]


def _normalize_costs(
    costs: Mapping[str, float] | None, streams: Iterable[str], default_cost: float
) -> dict[str, float]:
    """Build a validated stream->cost-per-item table covering ``streams``."""
    table = dict(costs) if costs is not None else {}
    for name in streams:
        if name not in table:
            if costs is not None:
                raise InvalidTreeError(f"no cost given for stream {name!r}")
            table[name] = default_cost
    for name, value in table.items():
        value = float(value)
        if math.isnan(value) or value < 0.0:
            raise InvalidTreeError(f"cost of stream {name!r} must be >= 0, got {value!r}")
        table[name] = value
    return table


# ---------------------------------------------------------------------------
# AND-trees
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AndTree:
    """A single-level AND query: the conjunction of its leaves.

    Parameters
    ----------
    leaves:
        The predicate leaves, in an arbitrary but fixed declaration order.
        Schedules refer to leaves by their index in this tuple.
    costs:
        Mapping from stream name to cost per data item. If omitted, every
        stream referenced by a leaf costs ``default_cost`` per item.
    default_cost:
        Cost per item used for streams missing from ``costs`` when ``costs``
        is ``None``.
    """

    leaves: tuple[Leaf, ...]
    costs: Mapping[str, float] = field(default_factory=dict)

    def __init__(
        self,
        leaves: Sequence[Leaf],
        costs: Mapping[str, float] | None = None,
        *,
        default_cost: float = 1.0,
    ) -> None:
        leaves = tuple(leaves)
        if not leaves:
            raise InvalidTreeError("an AND-tree needs at least one leaf")
        if not all(isinstance(leaf, Leaf) for leaf in leaves):
            raise InvalidTreeError("AndTree leaves must be Leaf instances")
        table = _normalize_costs(costs, (leaf.stream for leaf in leaves), default_cost)
        object.__setattr__(self, "leaves", leaves)
        object.__setattr__(self, "costs", table)

    # -- basic shape ---------------------------------------------------

    @property
    def m(self) -> int:
        """Number of leaves."""
        return len(self.leaves)

    def __len__(self) -> int:
        return len(self.leaves)

    def __iter__(self) -> Iterator[Leaf]:
        return iter(self.leaves)

    @property
    def streams(self) -> tuple[str, ...]:
        """Distinct stream names, in first-appearance order."""
        seen: dict[str, None] = {}
        for leaf in self.leaves:
            seen.setdefault(leaf.stream, None)
        return tuple(seen)

    @property
    def sharing_ratio(self) -> float:
        """Expected number of leaves per stream, ``rho = m / s`` (paper §III-B)."""
        return len(self.leaves) / len(self.streams)

    @property
    def is_read_once(self) -> bool:
        """True when no stream occurs in two leaves (the classical model)."""
        return len(self.streams) == len(self.leaves)

    def leaves_by_stream(self) -> dict[str, list[int]]:
        """Map stream name -> leaf indices using it, each list sorted by (items, index)."""
        groups: dict[str, list[int]] = {}
        for idx, leaf in enumerate(self.leaves):
            groups.setdefault(leaf.stream, []).append(idx)
        for name, idxs in groups.items():
            idxs.sort(key=lambda i: (self.leaves[i].items, i))
        return groups

    @property
    def success_prob(self) -> float:
        """Probability that the whole AND evaluates to TRUE."""
        out = 1.0
        for leaf in self.leaves:
            out *= leaf.prob
        return out

    @property
    def max_items(self) -> int:
        """Largest ``d_j`` over the leaves (``D`` in the paper's complexity bounds)."""
        return max(leaf.items for leaf in self.leaves)

    def to_dnf(self) -> "DnfTree":
        """View this AND-tree as a one-AND DNF tree (shares the cost table)."""
        return DnfTree([self.leaves], self.costs)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"AndTree: {self.m} leaves, {len(self.streams)} streams"]
        for idx, leaf in enumerate(self.leaves):
            lines.append(f"  [{idx}] {leaf.describe()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# DNF trees
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DnfTree:
    """An OR of AND nodes (disjunctive normal form), the paper's Section IV.

    Leaves have two addressing schemes:

    * a *global index* ``g`` in ``range(size)``, flattening the AND nodes in
      order — this is what :class:`~repro.core.schedule` schedules use;
    * a *reference* ``(i, j)`` = (AND index, position within AND), the
      paper's ``l_{i,j}`` notation.

    ``ref(g)`` and ``gindex(i, j)`` convert between the two.
    """

    ands: tuple[tuple[Leaf, ...], ...]
    costs: Mapping[str, float] = field(default_factory=dict)
    # Flattened-addressing caches, filled by __init__ via object.__setattr__.
    _flat: tuple[Leaf, ...] = field(init=False, repr=False, compare=False)
    _refs: tuple[tuple[int, int], ...] = field(init=False, repr=False, compare=False)
    _starts: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __init__(
        self,
        ands: Sequence[Sequence[Leaf]],
        costs: Mapping[str, float] | None = None,
        *,
        default_cost: float = 1.0,
    ) -> None:
        groups = tuple(tuple(group) for group in ands)
        if not groups:
            raise InvalidTreeError("a DNF tree needs at least one AND node")
        for i, group in enumerate(groups):
            if not group:
                raise InvalidTreeError(f"AND node {i} has no leaves")
            if not all(isinstance(leaf, Leaf) for leaf in group):
                raise InvalidTreeError("DnfTree leaves must be Leaf instances")
        streams = (leaf.stream for group in groups for leaf in group)
        table = _normalize_costs(costs, streams, default_cost)
        object.__setattr__(self, "ands", groups)
        object.__setattr__(self, "costs", table)
        # Flattened addressing, precomputed once (trees are immutable).
        flat: list[Leaf] = []
        refs: list[tuple[int, int]] = []
        starts: list[int] = []
        for i, group in enumerate(groups):
            starts.append(len(flat))
            for j, leaf in enumerate(group):
                flat.append(leaf)
                refs.append((i, j))
        object.__setattr__(self, "_flat", tuple(flat))
        object.__setattr__(self, "_refs", tuple(refs))
        object.__setattr__(self, "_starts", tuple(starts))

    # -- addressing ----------------------------------------------------

    @property
    def leaves(self) -> tuple[Leaf, ...]:
        """All leaves flattened in (AND index, position) order."""
        return self._flat

    @property
    def size(self) -> int:
        """Total number of leaves, ``|L|``."""
        return len(self.leaves)

    def __len__(self) -> int:
        return self.size

    @property
    def n_ands(self) -> int:
        """Number of AND nodes, ``N``."""
        return len(self.ands)

    @property
    def and_sizes(self) -> tuple[int, ...]:
        """Number of leaves of each AND node, ``m_i``."""
        return tuple(len(group) for group in self.ands)

    def ref(self, gindex: int) -> tuple[int, int]:
        """Global leaf index -> ``(and_index, position_within_and)``."""
        return self._refs[gindex]

    def gindex(self, and_index: int, position: int) -> int:
        """``(and_index, position_within_and)`` -> global leaf index."""
        if not 0 <= and_index < len(self.ands):
            raise InvalidTreeError(f"AND index {and_index} out of range")
        if not 0 <= position < len(self.ands[and_index]):
            raise InvalidTreeError(f"leaf position {position} out of range in AND {and_index}")
        return self._starts[and_index] + position

    def and_of(self, gindex: int) -> int:
        """AND node index owning global leaf ``gindex``."""
        return self.ref(gindex)[0]

    def leaf(self, gindex: int) -> Leaf:
        """Leaf at global index ``gindex``."""
        return self.leaves[gindex]

    def and_leaf_gindices(self, and_index: int) -> range:
        """Global indices of the leaves of AND node ``and_index``."""
        start = self._starts[and_index]
        return range(start, start + len(self.ands[and_index]))

    # -- shape / statistics ---------------------------------------------

    @property
    def streams(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for leaf in self.leaves:
            seen.setdefault(leaf.stream, None)
        return tuple(seen)

    @property
    def sharing_ratio(self) -> float:
        """Expected number of leaves per stream over the whole tree."""
        return self.size / len(self.streams)

    @property
    def is_read_once(self) -> bool:
        """True when no stream occurs in two leaves anywhere in the tree."""
        return len(self.streams) == self.size

    @property
    def max_items(self) -> int:
        """``D``: the maximum number of items any leaf requires."""
        return max(leaf.items for leaf in self.leaves)

    def and_tree(self, and_index: int) -> AndTree:
        """AND node ``and_index`` viewed as a standalone :class:`AndTree`."""
        return AndTree(self.ands[and_index], self.costs)

    def and_success_prob(self, and_index: int) -> float:
        """Probability that AND node ``and_index`` evaluates to TRUE."""
        out = 1.0
        for leaf in self.ands[and_index]:
            out *= leaf.prob
        return out

    @property
    def success_prob(self) -> float:
        """Probability that the OR root evaluates to TRUE."""
        out = 1.0
        for i in range(self.n_ands):
            out *= 1.0 - self.and_success_prob(i)
        return 1.0 - out

    def to_query_tree(self) -> "QueryTree":
        """Convert to the general :class:`QueryTree` representation."""
        ors = OrNode([AndNode([LeafNode(leaf) for leaf in group]) for group in self.ands])
        return QueryTree(ors, self.costs)

    def describe(self) -> str:
        lines = [f"DnfTree: {self.n_ands} ANDs, {self.size} leaves, {len(self.streams)} streams"]
        for i, group in enumerate(self.ands):
            lines.append(f"  AND {i}:")
            for j, leaf in enumerate(group):
                lines.append(f"    l_{i},{j} [g={self.gindex(i, j)}] {leaf.describe()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# General AND-OR trees
# ---------------------------------------------------------------------------


class Node:
    """Abstract node of a general AND-OR tree."""

    __slots__ = ()

    def iter_leaves(self) -> Iterator[Leaf]:
        raise NotImplementedError

    def simplified(self) -> "Node":
        """Collapse single-child operators and merge same-type nested operators."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class LeafNode(Node):
    """A leaf predicate wrapped as a tree node."""

    leaf: Leaf

    def iter_leaves(self) -> Iterator[Leaf]:
        yield self.leaf

    def simplified(self) -> "Node":
        return self


class _OperatorNode(Node):
    __slots__ = ("children",)
    children: tuple[Node, ...]
    symbol = "?"

    def __init__(self, children: Sequence[Node]) -> None:
        children = tuple(children)
        if not children:
            raise InvalidTreeError(f"{type(self).__name__} needs at least one child")
        if not all(isinstance(child, Node) for child in children):
            raise InvalidTreeError("operator children must be Node instances")
        object.__setattr__(self, "children", children)

    def __setattr__(self, name: str, value: object) -> None:  # immutability
        raise AttributeError(f"{type(self).__name__} is immutable")

    # Slots + a raising __setattr__ break default unpickling (it restores
    # slot state via setattr); rebuild through the same object.__setattr__
    # escape hatch the constructor uses. Query trees cross process
    # boundaries inside QuerySnapshot payloads in the process-mode cluster.
    def __getstate__(self) -> tuple:
        return self.children

    def __setstate__(self, state: tuple) -> None:
        object.__setattr__(self, "children", state)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _OperatorNode):
            return NotImplemented
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({list(self.children)!r})"

    def iter_leaves(self) -> Iterator[Leaf]:
        for child in self.children:
            yield from child.iter_leaves()

    def simplified(self) -> Node:
        flat: list[Node] = []
        for child in self.children:
            child = child.simplified()
            if isinstance(child, _OperatorNode) and type(child) is type(self):
                flat.extend(child.children)
            else:
                flat.append(child)
        if len(flat) == 1:
            return flat[0]
        return type(self)(flat)


class AndNode(_OperatorNode):
    """Conjunction: TRUE iff every child is TRUE (short-circuits on FALSE)."""

    __slots__ = ()
    symbol = "AND"


class OrNode(_OperatorNode):
    """Disjunction: TRUE iff some child is TRUE (short-circuits on TRUE)."""

    __slots__ = ()
    symbol = "OR"


def _leaf_children(node: _OperatorNode) -> list[Leaf]:
    """The leaves of an operator whose children are all leaf nodes."""
    leaves: list[Leaf] = []
    for child in node.children:
        if not isinstance(child, LeafNode):
            raise InvalidTreeError(
                f"expected a leaf child, got {type(child).__name__}"
            )
        leaves.append(child.leaf)
    return leaves


TreeLike = Union["QueryTree", AndTree, DnfTree]


@dataclass(frozen=True)
class QueryTree:
    """A general rooted AND-OR tree with probabilistic leaves.

    The root may be a bare :class:`LeafNode`, an :class:`AndNode` or an
    :class:`OrNode`; operators nest arbitrarily. Leaves get global indices in
    left-to-right depth-first order (``leaves`` tuple).
    """

    root: Node
    costs: Mapping[str, float] = field(default_factory=dict)
    # Depth-first leaf cache, filled by __init__ via object.__setattr__.
    _leaves: tuple[Leaf, ...] = field(init=False, repr=False, compare=False)

    def __init__(
        self,
        root: Node,
        costs: Mapping[str, float] | None = None,
        *,
        default_cost: float = 1.0,
    ) -> None:
        if not isinstance(root, Node):
            raise InvalidTreeError("QueryTree root must be a Node")
        leaves = tuple(root.iter_leaves())
        if not leaves:
            raise InvalidTreeError("a query tree needs at least one leaf")
        table = _normalize_costs(costs, (leaf.stream for leaf in leaves), default_cost)
        object.__setattr__(self, "root", root)
        object.__setattr__(self, "costs", table)
        object.__setattr__(self, "_leaves", leaves)

    @property
    def leaves(self) -> tuple[Leaf, ...]:
        """Leaves in depth-first left-to-right order (global index order)."""
        return self._leaves

    @property
    def size(self) -> int:
        return len(self.leaves)

    def __len__(self) -> int:
        return self.size

    @property
    def streams(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for leaf in self.leaves:
            seen.setdefault(leaf.stream, None)
        return tuple(seen)

    @property
    def is_read_once(self) -> bool:
        return len(self.streams) == len(self.leaves)

    @property
    def depth(self) -> int:
        """Number of operator levels (a bare leaf has depth 0)."""

        def rec(node: Node) -> int:
            if not isinstance(node, _OperatorNode):
                return 0
            return 1 + max(rec(child) for child in node.children)

        return rec(self.root)

    @property
    def num_nodes(self) -> int:
        """Total node count (operators + leaves)."""

        def rec(node: Node) -> int:
            if not isinstance(node, _OperatorNode):
                return 1
            return 1 + sum(rec(child) for child in node.children)

        return rec(self.root)

    # -- shape tests and conversions ------------------------------------

    def is_and_tree(self) -> bool:
        """True when the tree is a single AND over leaves (or a bare leaf)."""
        root = self.root
        if isinstance(root, LeafNode):
            return True
        return isinstance(root, AndNode) and all(
            isinstance(child, LeafNode) for child in root.children
        )

    def is_dnf(self) -> bool:
        """True when the tree is an OR of ANDs-of-leaves (accepting degenerate forms)."""
        root = self.root
        if isinstance(root, LeafNode):
            return True
        if isinstance(root, AndNode):
            return all(isinstance(child, LeafNode) for child in root.children)
        if not isinstance(root, OrNode):
            return False
        for child in root.children:
            if isinstance(child, LeafNode):
                continue
            if isinstance(child, AndNode) and all(
                isinstance(sub, LeafNode) for sub in child.children
            ):
                continue
            return False
        return True

    def as_and_tree(self) -> AndTree:
        """Convert to :class:`AndTree`; raises if the shape does not match."""
        if not self.is_and_tree():
            raise InvalidTreeError("tree is not a single-level AND-tree")
        return AndTree(self.leaves, self.costs)

    def as_dnf(self) -> DnfTree:
        """Convert to :class:`DnfTree`; raises if the tree is not already in DNF shape."""
        if not self.is_dnf():
            raise InvalidTreeError("tree is not in DNF shape; use expand_to_dnf()")
        root = self.root
        if isinstance(root, LeafNode):
            return DnfTree([[root.leaf]], self.costs)
        if isinstance(root, AndNode):
            return DnfTree([_leaf_children(root)], self.costs)
        if not isinstance(root, OrNode):
            raise InvalidTreeError(f"unexpected root node {type(root).__name__}")
        groups: list[list[Leaf]] = []
        for child in root.children:
            if isinstance(child, LeafNode):
                groups.append([child.leaf])
            elif isinstance(child, AndNode):
                groups.append(_leaf_children(child))
            else:
                raise InvalidTreeError(f"unexpected DNF child {type(child).__name__}")
        return DnfTree(groups, self.costs)

    def expand_to_dnf(self, *, max_terms: int = 4096) -> DnfTree:
        """Distribute AND over OR to obtain an equivalent DNF tree.

        The expansion of a general AND-OR tree can be exponentially large;
        ``max_terms`` bounds the number of generated AND terms.

        Note: expansion duplicates leaves across terms, so the resulting DNF
        is *not* probabilistically equivalent leaf-for-leaf (duplicated leaves
        become independent copies). It is intended for structural experiments,
        not for exact cost transfers — the paper's DNF results apply to trees
        that are DNF to begin with.
        """
        from repro.errors import BudgetExceededError

        def rec(node: Node) -> list[tuple[Leaf, ...]]:
            if isinstance(node, LeafNode):
                return [(node.leaf,)]
            if not isinstance(node, _OperatorNode):
                raise InvalidTreeError(f"unexpected node {type(node).__name__}")
            child_terms = [rec(child) for child in node.children]
            if isinstance(node, OrNode):
                merged = [term for terms in child_terms for term in terms]
                if len(merged) > max_terms:
                    raise BudgetExceededError(f"DNF expansion exceeds {max_terms} terms")
                return merged
            total = 1
            for terms in child_terms:
                total *= len(terms)
                if total > max_terms:
                    raise BudgetExceededError(f"DNF expansion exceeds {max_terms} terms")
            return [
                tuple(itertools.chain.from_iterable(combo))
                for combo in itertools.product(*child_terms)
            ]

        return DnfTree(rec(self.root), self.costs)

    @property
    def success_prob(self) -> float:
        """Probability the root evaluates to TRUE (independent leaves)."""

        def rec(node: Node) -> float:
            if isinstance(node, LeafNode):
                return node.leaf.prob
            if not isinstance(node, _OperatorNode):
                raise InvalidTreeError(f"unexpected node {type(node).__name__}")
            if isinstance(node, AndNode):
                out = 1.0
                for child in node.children:
                    out *= rec(child)
                return out
            out = 1.0
            for child in node.children:
                out *= 1.0 - rec(child)
            return 1.0 - out

        return rec(self.root)

    def describe(self) -> str:
        lines = [f"QueryTree: {self.size} leaves, {len(self.streams)} streams"]

        def rec(node: Node, indent: int) -> None:
            pad = "  " * indent
            if isinstance(node, LeafNode):
                lines.append(f"{pad}- {node.leaf.describe()}")
            elif isinstance(node, _OperatorNode):
                lines.append(f"{pad}{node.symbol}")
                for child in node.children:
                    rec(child, indent + 1)

        rec(self.root, 1)
        return "\n".join(lines)
