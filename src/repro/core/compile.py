"""Compilation of (tree, schedule) pairs into flat numpy programs.

The scalar executor interprets a schedule leaf by leaf against Python
objects; every trial pays attribute lookups, dict probes and an ancestor
walk per leaf. :func:`compile_schedule` does that structural work *once*,
producing a :class:`CompiledSchedule` of plain integer/float arrays — the
form the vectorized trial engine (:mod:`repro.engine.vectorized`) consumes
to evaluate thousands of independent trials with whole-matrix operations.

Everything here is pure structure: no randomness, no cache state. A
compiled schedule can be reused for any number of batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.core.resolution import TreeIndex
from repro.core.schedule import Schedule, validate_schedule
from repro.core.tree import AndTree, DnfTree, QueryTree

__all__ = ["CompiledSchedule", "compile_schedule"]


@dataclass(frozen=True)
class CompiledSchedule:
    """A linear schedule lowered to flat arrays over one :class:`TreeIndex`.

    Per-leaf arrays are indexed by *global leaf index* (``gindex``); node
    arrays are indexed by the tree index's depth-first node ids. ``chains``
    packs each leaf's skip-set — the leaf's own node followed by its
    ancestors up to the root — into one padded matrix so the vectorized
    engine can test "is this leaf short-circuited away?" with a single
    fancy-indexed reduction.
    """

    index: TreeIndex
    schedule: Schedule
    #: Schedule as an int array of global leaf indices.
    order: np.ndarray
    #: Per-leaf node id inside the tree index.
    leaf_node_ids: np.ndarray
    #: Per-leaf window size ``d_j``.
    items: np.ndarray
    #: Per-leaf cost of one item of the leaf's stream, ``c(S(j))``.
    unit_costs: np.ndarray
    #: Per-leaf success probability ``p_j``.
    probs: np.ndarray
    #: Per-leaf dense stream slot (same slot = same stream = shared cache).
    stream_slots: np.ndarray
    #: Slot -> stream name (inverse of ``stream_slots``).
    slot_streams: tuple[str, ...]
    #: ``chains[g]`` = (leaf node id, ancestors..., -1 padding); shape (L, depth+1).
    chains: np.ndarray
    #: Per-node kind (0 leaf / 1 AND / 2 OR), parent id, child count.
    kinds: np.ndarray
    parent: np.ndarray
    n_children: np.ndarray

    @property
    def n_leaves(self) -> int:
        return int(self.order.size)

    @property
    def n_nodes(self) -> int:
        return int(self.kinds.size)

    @property
    def n_slots(self) -> int:
        return len(self.slot_streams)


def compile_schedule(
    tree: Union[QueryTree, AndTree, DnfTree],
    schedule: Sequence[int],
    *,
    index: TreeIndex | None = None,
) -> CompiledSchedule:
    """Lower ``schedule`` over ``tree`` into a :class:`CompiledSchedule`.

    ``index`` may be supplied to reuse an existing :class:`TreeIndex`
    (it must have been built from the same tree).
    """
    schedule = validate_schedule(tree, schedule)
    if index is None:
        index = TreeIndex(tree)
    qtree = index.tree
    leaves = qtree.leaves
    costs = qtree.costs

    stream_slots_map: dict[str, int] = {}
    for leaf in leaves:
        stream_slots_map.setdefault(leaf.stream, len(stream_slots_map))

    n_leaves = len(leaves)
    chain_width = 1 + max(
        (len(path) for path in index.leaf_ancestors), default=0
    )
    chains = np.full((n_leaves, chain_width), -1, dtype=np.int64)
    for g in range(n_leaves):
        chains[g, 0] = index.leaf_node_ids[g]
        path = index.leaf_ancestors[g]
        chains[g, 1 : 1 + len(path)] = path

    return CompiledSchedule(
        index=index,
        schedule=schedule,
        order=np.asarray(schedule, dtype=np.int64),
        leaf_node_ids=np.asarray(index.leaf_node_ids, dtype=np.int64),
        items=np.asarray([leaf.items for leaf in leaves], dtype=np.int64),
        unit_costs=np.asarray([costs[leaf.stream] for leaf in leaves], dtype=np.float64),
        probs=np.asarray([leaf.prob for leaf in leaves], dtype=np.float64),
        stream_slots=np.asarray(
            [stream_slots_map[leaf.stream] for leaf in leaves], dtype=np.int64
        ),
        slot_streams=tuple(stream_slots_map),
        chains=chains,
        kinds=np.asarray(index.kinds, dtype=np.int8),
        parent=np.asarray(index.parent, dtype=np.int64),
        n_children=np.asarray([len(ids) for ids in index.children], dtype=np.int64),
    )
