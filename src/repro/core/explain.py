"""Human-readable schedule explanations.

``explain_schedule`` breaks a schedule's expected cost down leaf by leaf
(Proposition 2 contributions) with the probabilities that drive them —
the "why is this order good / which sensor drains the battery" view that a
deployment engineer actually needs. Used by ``python -m repro schedule
--explain`` and handy in notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.cost import DnfPrefixCost, expected_stream_items
from repro.core.schedule import validate_schedule
from repro.core.tree import DnfTree

__all__ = ["LeafExplanation", "ScheduleExplanation", "explain_schedule"]


@dataclass(frozen=True, slots=True)
class LeafExplanation:
    """One schedule step."""

    position: int
    gindex: int
    and_index: int
    label: str
    stream: str
    items: int
    prob_evaluated: float     # P(this leaf is actually evaluated)
    expected_cost: float      # its Prop. 2 contribution
    cumulative_cost: float


@dataclass(frozen=True)
class ScheduleExplanation:
    """Full breakdown of a schedule's expected cost."""

    steps: tuple[LeafExplanation, ...]
    total_cost: float
    stream_items: dict[str, float]   # expected items pulled per stream
    stream_cost: dict[str, float]    # expected cost per stream

    def to_table_rows(self) -> list[tuple[object, ...]]:
        return [
            (
                step.position,
                f"l_{step.and_index},? " if not step.label else step.label,
                f"{step.stream}[{step.items}]",
                step.prob_evaluated,
                step.expected_cost,
                step.cumulative_cost,
            )
            for step in self.steps
        ]

    @staticmethod
    def table_headers() -> tuple[str, ...]:
        return ("#", "leaf", "needs", "P(evaluated)", "E[cost]", "cumulative")

    def dominant_stream(self) -> str:
        """The stream expected to cost the most under this schedule."""
        return max(self.stream_cost, key=lambda name: self.stream_cost[name])


def explain_schedule(tree: DnfTree, schedule: Sequence[int]) -> ScheduleExplanation:
    """Per-leaf Proposition 2 breakdown of ``schedule`` on ``tree``.

    ``prob_evaluated`` is the probability the leaf is reached *and* not
    short-circuited: all its AND-predecessors TRUE, no completed AND TRUE.
    Note the leaf may be evaluated at zero cost (items cached) — the two
    columns answer different questions.
    """
    schedule = validate_schedule(tree, schedule)
    state = DnfPrefixCost(tree)
    steps: list[LeafExplanation] = []
    stream_cost: dict[str, float] = {}
    for position, gindex in enumerate(schedule):
        i, j = tree.ref(gindex)
        leaf = tree.leaves[gindex]
        # P(evaluated) = P(own AND-prefix all TRUE) * P(no completed AND is TRUE)
        prob = state.prefix_prob[i]
        for a in state.completed:
            prob *= state.and_false_prob[a]
        token = state.push(gindex)
        stream_cost[leaf.stream] = stream_cost.get(leaf.stream, 0.0) + token.contribution
        steps.append(
            LeafExplanation(
                position=position,
                gindex=gindex,
                and_index=i,
                label=leaf.label or f"l_{i},{j}",
                stream=leaf.stream,
                items=leaf.items,
                prob_evaluated=prob,
                expected_cost=token.contribution,
                cumulative_cost=state.total,
            )
        )
    return ScheduleExplanation(
        steps=tuple(steps),
        total_cost=state.total,
        stream_items=expected_stream_items(tree, schedule, validate=False),
        stream_cost=stream_cost,
    )
