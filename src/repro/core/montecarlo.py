"""Monte-Carlo estimation of schedule costs.

An independent line of validation for the analytic evaluators: sample leaf
outcomes, *simulate* the short-circuited execution with the shared item
cache, and average the incurred acquisition costs. Sampling is vectorized
with NumPy. Two interchangeable simulation engines:

* ``engine="vectorized"`` (default) — evaluate the whole outcome matrix at
  once through :class:`repro.engine.vectorized.VectorizedExecutor`;
* ``engine="scalar"`` — a per-sample Python walk mirroring
  :mod:`repro.engine.executor`.

Both engines draw the outcome matrix from the generator with one
``rng.random((n_samples, L))`` call and charge costs in the same order, so
they return bit-for-bit identical statistics for the same seed — switching
engines only changes the wall-clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.core.resolution import TreeIndex
from repro.core.schedule import validate_schedule
from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.errors import StreamError

__all__ = ["MonteCarloResult", "monte_carlo_cost"]


@dataclass(frozen=True, slots=True)
class MonteCarloResult:
    """Summary statistics of a Monte-Carlo cost estimation run."""

    mean: float
    std_error: float
    n_samples: int

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the expected cost."""
        half = 1.96 * self.std_error
        return (self.mean - half, self.mean + half)

    def compatible_with(self, expected: float, *, z: float = 4.0) -> bool:
        """True when ``expected`` lies within ``z`` standard errors of the mean."""
        if self.std_error == 0.0:
            return math.isclose(self.mean, expected, rel_tol=1e-9, abs_tol=1e-9)
        return abs(self.mean - expected) <= z * self.std_error


def monte_carlo_cost(
    tree: Union[QueryTree, AndTree, DnfTree],
    schedule: Sequence[int],
    *,
    n_samples: int = 10_000,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    engine: str = "vectorized",
) -> MonteCarloResult:
    """Estimate the expected cost of ``schedule`` by simulated execution."""
    if engine not in ("scalar", "vectorized"):
        raise StreamError(f"unknown Monte-Carlo engine {engine!r}")
    schedule = validate_schedule(tree, schedule)
    if rng is None:
        rng = np.random.default_rng(seed)
    index = TreeIndex(tree)
    leaves = index.tree.leaves
    costs = index.tree.costs
    probs = np.array([leaf.prob for leaf in leaves])

    outcomes = rng.random((n_samples, len(leaves))) < probs  # vectorized draws
    if engine == "vectorized":
        # Lazy import: the engine layer builds on core, not the reverse.
        from repro.engine.vectorized import VectorizedExecutor

        batch = VectorizedExecutor(index.tree, index=index).run_batch(
            schedule, outcomes=outcomes
        )
        sample_costs = batch.costs
    else:
        # The scalar walk is kept as an *independent* reference
        # implementation (it cross-validates both the analytic evaluators
        # and the execution engines); do not fold it into run_battery.
        stream_slots: dict[str, int] = {}
        for leaf in leaves:
            stream_slots.setdefault(leaf.stream, len(stream_slots))
        leaf_slot = [stream_slots[leaf.stream] for leaf in leaves]
        leaf_items = [leaf.items for leaf in leaves]
        leaf_cost = [costs[leaf.stream] for leaf in leaves]
        sample_costs = np.empty(n_samples)
        n_slots = len(stream_slots)
        for row in range(n_samples):
            state = index.new_state()
            mem = [0] * n_slots
            cost = 0.0
            row_outcomes = outcomes[row]
            for g in schedule:
                if state.root_value is not None:
                    break
                if state.is_skipped(g):
                    continue
                slot = leaf_slot[g]
                missing = leaf_items[g] - mem[slot]
                if missing > 0:
                    cost += missing * leaf_cost[g]
                    mem[slot] = leaf_items[g]
                state.set_leaf(g, bool(row_outcomes[g]))
            sample_costs[row] = cost

    mean = float(sample_costs.mean())
    std_error = float(sample_costs.std(ddof=1) / math.sqrt(n_samples)) if n_samples > 1 else 0.0
    return MonteCarloResult(mean=mean, std_error=std_error, n_samples=n_samples)
