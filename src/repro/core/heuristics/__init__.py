"""Polynomial-time scheduling heuristics for DNF trees (paper §IV-D).

Three families — leaf-ordered, AND-ordered and stream-ordered — behind a
common :class:`~repro.core.heuristics.base.Scheduler` interface and a name
registry. Importing this package registers all built-in heuristics.
"""

from repro.core.heuristics.base import (
    Scheduler,
    available_schedulers,
    get_scheduler,
    make_paper_heuristics,
    paper_heuristic_names,
    register_scheduler,
)
from repro.core.heuristics.leaf_ordered import (
    LeafOrderedDecreasingQ,
    LeafOrderedIncreasingCost,
    LeafOrderedIncreasingCostOverQ,
    LeafOrderedRandom,
    leaf_full_cost,
)
from repro.core.heuristics.and_ordered import (
    AndOrderedDecreasingP,
    AndOrderedIncreasingCDynamic,
    AndOrderedIncreasingCOverPDynamic,
    AndOrderedIncreasingCOverPStatic,
    AndOrderedIncreasingCStatic,
    and_block_plan,
)
from repro.core.heuristics.stream_ordered import StreamOrdered, stream_metric
from repro.core.heuristics.exhaustive import ExhaustiveOptimal

__all__ = [
    "Scheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "paper_heuristic_names",
    "make_paper_heuristics",
    "leaf_full_cost",
    "and_block_plan",
    "stream_metric",
    "LeafOrderedRandom",
    "LeafOrderedDecreasingQ",
    "LeafOrderedIncreasingCost",
    "LeafOrderedIncreasingCostOverQ",
    "AndOrderedDecreasingP",
    "AndOrderedIncreasingCStatic",
    "AndOrderedIncreasingCDynamic",
    "AndOrderedIncreasingCOverPStatic",
    "AndOrderedIncreasingCOverPDynamic",
    "StreamOrdered",
    "ExhaustiveOptimal",
]
