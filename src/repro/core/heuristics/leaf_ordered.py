"""Leaf-ordered heuristics (paper §IV-D, first family).

These ignore the tree structure entirely and simply sort the leaves by a
per-leaf key:

* *decreasing q* — prioritize leaves likely to short-circuit their AND;
* *increasing C* (``C = d * c``) — prioritize cheap leaves;
* *increasing C/q* — cheap per unit of short-circuit power;
* *random* — the baseline.

Ties break by global leaf index, making every heuristic deterministic (the
random one is deterministic given its seed).
"""

from __future__ import annotations

import math
from typing import Callable, ClassVar

import numpy as np

from repro.core.heuristics.base import Scheduler, register_scheduler
from repro.core.leaf import Leaf
from repro.core.schedule import Schedule
from repro.core.tree import DnfTree

__all__ = [
    "LeafOrderedRandom",
    "LeafOrderedDecreasingQ",
    "LeafOrderedIncreasingCost",
    "LeafOrderedIncreasingCostOverQ",
    "leaf_full_cost",
]


def leaf_full_cost(leaf: Leaf, costs) -> float:
    """The leaf-ordered heuristics' cost metric ``C = d * c(S)``."""
    return leaf.items * costs[leaf.stream]


class _KeySortedScheduler(Scheduler):
    """Common machinery: sort global leaf indices by a per-leaf key."""

    def _key(self, leaf: Leaf, tree: DnfTree) -> float:
        raise NotImplementedError

    def schedule(self, tree: DnfTree) -> Schedule:
        keyed = sorted(
            range(tree.size), key=lambda g: (self._key(tree.leaves[g], tree), g)
        )
        return tuple(keyed)


@register_scheduler
class LeafOrderedRandom(Scheduler):
    """Uniformly random leaf order — the baseline of Figure 5."""

    name: ClassVar[str] = "leaf-random"
    paper_label: ClassVar[str] = "Leaf-ord., random"

    def __init__(self, seed: int | None = None, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def schedule(self, tree: DnfTree) -> Schedule:
        return tuple(int(g) for g in self._rng.permutation(tree.size))

    def __repr__(self) -> str:  # rng state is not meaningfully printable
        return "LeafOrderedRandom()"


@register_scheduler
class LeafOrderedDecreasingQ(_KeySortedScheduler):
    """Sort by decreasing failure probability ``q = 1 - p``."""

    name: ClassVar[str] = "leaf-dec-q"
    paper_label: ClassVar[str] = "Leaf-ord., dec. q"

    def _key(self, leaf: Leaf, tree: DnfTree) -> float:
        return -leaf.fail


@register_scheduler
class LeafOrderedIncreasingCost(_KeySortedScheduler):
    """Sort by increasing full acquisition cost ``C = d * c``."""

    name: ClassVar[str] = "leaf-inc-c"
    paper_label: ClassVar[str] = "Leaf-ord., inc. C"

    def _key(self, leaf: Leaf, tree: DnfTree) -> float:
        return leaf_full_cost(leaf, tree.costs)


@register_scheduler
class LeafOrderedIncreasingCostOverQ(_KeySortedScheduler):
    """Sort by increasing ``C/q`` (the read-once Smith index, applied blindly)."""

    name: ClassVar[str] = "leaf-inc-c-over-q"
    paper_label: ClassVar[str] = "Leaf-ord., inc. C/q"

    def _key(self, leaf: Leaf, tree: DnfTree) -> float:
        cost = leaf_full_cost(leaf, tree.costs)
        if leaf.fail <= 0.0:
            return math.inf if cost > 0.0 else 0.0
        return cost / leaf.fail
