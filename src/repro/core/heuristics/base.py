"""Scheduler interface and registry for the DNF heuristics of paper §IV-D.

Every heuristic is a :class:`Scheduler`: a (usually stateless) object that
maps a :class:`~repro.core.tree.DnfTree` to a schedule. Heuristics register
themselves by name so experiment drivers and user code can instantiate them
uniformly::

    from repro.core.heuristics import get_scheduler

    sched = get_scheduler("and-inc-c-over-p-dynamic").schedule(tree)
"""

from __future__ import annotations

import abc
from typing import Callable, ClassVar, Iterable

from repro.core.cost import dnf_schedule_cost
from repro.core.schedule import Schedule
from repro.core.tree import DnfTree
from repro.errors import ReproError

__all__ = [
    "Scheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "paper_heuristic_names",
]

_REGISTRY: dict[str, Callable[..., "Scheduler"]] = {}

#: Registry names of the 10 heuristics evaluated in the paper's Figure 5,
#: in the figure's legend order.
_PAPER_HEURISTICS: tuple[str, ...] = (
    "stream-ordered",
    "leaf-random",
    "leaf-dec-q",
    "leaf-inc-c",
    "leaf-inc-c-over-q",
    "and-dec-p",
    "and-inc-c-static",
    "and-inc-c-over-p-static",
    "and-inc-c-dynamic",
    "and-inc-c-over-p-dynamic",
)


class Scheduler(abc.ABC):
    """A schedule-producing strategy for DNF trees.

    Attributes
    ----------
    name:
        Registry identifier (kebab-case).
    paper_label:
        The label used in the paper's figures (e.g. ``"AND-ord., inc. C/p, dyn"``).
    """

    name: ClassVar[str] = ""
    paper_label: ClassVar[str] = ""

    @abc.abstractmethod
    def schedule(self, tree: DnfTree) -> Schedule:
        """Compute an evaluation order for the leaves of ``tree``."""

    def cost(self, tree: DnfTree) -> float:
        """Expected cost of this scheduler's schedule on ``tree`` (Prop. 2)."""
        return dnf_schedule_cost(tree, self.schedule(tree), validate=False)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def register_scheduler(cls: type[Scheduler]) -> type[Scheduler]:
    """Class decorator: add a scheduler class to the registry under ``cls.name``."""
    if not cls.name:
        raise ReproError(f"{cls.__name__} has no registry name")
    if cls.name in _REGISTRY:
        raise ReproError(f"duplicate scheduler name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by name (kwargs go to its constructor)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ReproError(f"unknown scheduler {name!r}; known: {known}") from None
    return factory(**kwargs)


def available_schedulers() -> tuple[str, ...]:
    """All registered scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def paper_heuristic_names() -> tuple[str, ...]:
    """The 10 heuristics of the paper's Figure 5, in legend order."""
    return _PAPER_HEURISTICS


def make_paper_heuristics(seed: int | None = 0) -> dict[str, Scheduler]:
    """Instantiate the paper's 10 heuristics (``seed`` feeds the random baseline)."""
    out: dict[str, Scheduler] = {}
    for name in _PAPER_HEURISTICS:
        out[name] = get_scheduler(name, seed=seed) if name == "leaf-random" else get_scheduler(name)
    return out
