"""Stream-ordered heuristic (paper §IV-D, third family — prior art [4]).

Proposed by Lim, Misra and Mo (Distributed & Parallel Databases 2013) for the
shared PAOTR problem: order the *streams*, then acquire all items a stream
contributes before moving to the next stream. Each stream ``S`` gets a metric

    R(S) = sum_{leaves l_{i,j} on S} q_{i,j} * n_{i,j}
           -----------------------------------------
           max_{leaves l_{i,j} on S} d_{i,j} * c(S)

whose numerator is the stream's "short-circuiting power" (``n_{i,j}`` is the
number of leaves whose evaluation a FALSE ``l_{i,j}`` would short-circuit —
the other ``m_i - 1`` leaves of its AND) and whose denominator is the
stream's worst-case acquisition cost.

Two reproduction notes, both exposed as options:

* The paper's text sorts streams by *increasing* ``R`` but its stated
  rationale (prioritize high shortcut power and low cost) implies
  *decreasing* ``R``. We default to the rationale-consistent decreasing
  order; ``literal_increasing_r=True`` gives the text's literal order. The
  ablation benchmark compares both.
* The original heuristic of [4] evaluates a stream's leaves by *decreasing*
  ``d`` (fetch the maximum window up front); the paper improves this to
  *increasing* ``d`` using Proposition 1 and uses the improved version. We
  default to the improved version; ``original_decreasing_d=True`` restores
  the original.
"""

from __future__ import annotations

import math
from typing import ClassVar

from repro.core.heuristics.base import Scheduler, register_scheduler
from repro.core.schedule import Schedule
from repro.core.tree import DnfTree

__all__ = ["StreamOrdered", "stream_metric"]


def stream_metric(tree: DnfTree, stream: str) -> float:
    """The ``R(S)`` metric of Lim et al. for ``stream`` on ``tree``."""
    power = 0.0
    max_cost = 0.0
    for g in range(tree.size):
        leaf = tree.leaves[g]
        if leaf.stream != stream:
            continue
        i, _ = tree.ref(g)
        shortcircuits = len(tree.ands[i]) - 1
        power += leaf.fail * shortcircuits
        max_cost = max(max_cost, leaf.items * tree.costs[stream])
    if max_cost <= 0.0:
        # Free stream: infinitely attractive (schedule first under either order).
        return math.inf
    return power / max_cost


@register_scheduler
class StreamOrdered(Scheduler):
    """The stream-ordered heuristic of [4], with the paper's Prop.-1 improvement."""

    name: ClassVar[str] = "stream-ordered"
    paper_label: ClassVar[str] = "Stream-ord."

    def __init__(
        self,
        *,
        literal_increasing_r: bool = False,
        original_decreasing_d: bool = False,
    ) -> None:
        self.literal_increasing_r = literal_increasing_r
        self.original_decreasing_d = original_decreasing_d

    def schedule(self, tree: DnfTree) -> Schedule:
        streams = tree.streams  # first-appearance order for deterministic ties
        metrics = {s: stream_metric(tree, s) for s in streams}
        rank = {s: pos for pos, s in enumerate(streams)}
        if self.literal_increasing_r:
            ordered = sorted(streams, key=lambda s: (metrics[s], rank[s]))
        else:
            ordered = sorted(streams, key=lambda s: (-metrics[s], rank[s]))
        schedule: list[int] = []
        for stream in ordered:
            gindices = [g for g in range(tree.size) if tree.leaves[g].stream == stream]
            if self.original_decreasing_d:
                gindices.sort(key=lambda g: (-tree.leaves[g].items, g))
            else:
                gindices.sort(key=lambda g: (tree.leaves[g].items, g))
            schedule.extend(gindices)
        return tuple(schedule)

    def __repr__(self) -> str:
        return (
            f"StreamOrdered(literal_increasing_r={self.literal_increasing_r}, "
            f"original_decreasing_d={self.original_decreasing_d})"
        )
