"""AND-ordered heuristics (paper §IV-D, second family).

These exploit Theorem 2 (some optimal schedule is depth-first) and
Algorithm 1 (optimal within one AND node): each AND node's leaves are ordered
by Algorithm 1, the node's expected cost ``C`` and success probability ``p``
are computed for that order, and the AND *blocks* are then sorted:

* decreasing ``p`` — maximize the chance of short-circuiting the OR early;
* increasing ``C`` — cheapest AND first;
* increasing ``C/p`` — cheapest per unit of success probability.

The last two exist in two flavours (paper's "static"/"dynamic"):

* **static** — each AND's cost is computed in isolation, as if it were the
  only child of the OR;
* **dynamic** — ANDs are picked one at a time, and each candidate's cost is
  its *marginal* expected cost given the ANDs already scheduled — i.e.
  accounting for the probability that items it needs were already acquired —
  computed with the Proposition 2 prefix machinery
  (:meth:`~repro.core.cost.DnfPrefixCost.peek_block`).

The paper's experiments find "AND-ordered, increasing C/p, dynamic" to be the
best heuristic overall.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Callable, ClassVar, Iterator, Optional

from repro.core.andtree_optimal import algorithm1_order
from repro.core.cost import DnfPrefixCost, and_tree_cost
from repro.core.heuristics.base import Scheduler, register_scheduler
from repro.core.schedule import Schedule
from repro.core.tree import DnfTree

__all__ = [
    "and_block_plan",
    "and_block_local_plan",
    "block_planner",
    "current_block_planner",
    "AndOrderedDecreasingP",
    "AndOrderedIncreasingCStatic",
    "AndOrderedIncreasingCDynamic",
    "AndOrderedIncreasingCOverPStatic",
    "AndOrderedIncreasingCOverPDynamic",
]

#: One AND block's plan: ``(gindices, isolated cost, success probability)``.
BlockPlan = tuple[list[int], float, float]
#: Provider of all blocks' plans for a tree, or None to decline.
BlockPlanner = Callable[[DnfTree], Optional[list[BlockPlan]]]


def and_block_local_plan(
    tree: DnfTree, and_index: int
) -> tuple[tuple[int, ...], float, float]:
    """Plan one AND node in isolation, in *local* (within-AND) positions.

    Returns ``(order, cost, prob)``: the node's leaf positions in
    Algorithm-1 order, the expected cost of evaluating the node alone from
    an empty cache, and its success probability. The local form is what the
    plan cache's per-clause store keeps — it depends only on the clause's
    own leaves and cost slice, so it transfers between trees that share the
    clause at different AND indices.
    """
    and_tree = tree.and_tree(and_index)
    order = algorithm1_order(and_tree)
    cost = and_tree_cost(and_tree, order, validate=False)
    return tuple(order), cost, tree.and_success_prob(and_index)


def and_block_plan(tree: DnfTree, and_index: int) -> BlockPlan:
    """Plan one AND node in isolation.

    Returns ``(gindices, cost, prob)``: the node's leaves as global indices in
    Algorithm-1 order, the expected cost of evaluating the node alone from an
    empty cache, and its success probability.
    """
    order, cost, prob = and_block_local_plan(tree, and_index)
    gindices = [tree.gindex(and_index, j) for j in order]
    return gindices, cost, prob


# Thread-local injection point for per-AND block plans. The plan cache
# installs a planner (serving memoized clause plans keyed by interned-clause
# identity) around exactly the schedule() call it owns; everything else —
# re-planning on belief trees, direct scheduler use, other threads — sees no
# planner and takes the compute path. Thread-local, not global: concurrent
# admissions on different shards must not observe each other's planner.
_PLANNER_STATE = threading.local()


def current_block_planner() -> BlockPlanner | None:
    """The block planner installed on this thread, if any."""
    planner: BlockPlanner | None = getattr(_PLANNER_STATE, "planner", None)
    return planner


@contextmanager
def block_planner(planner: BlockPlanner) -> Iterator[None]:
    """Install ``planner`` as this thread's block-plan provider.

    A planner receives the tree being scheduled and returns all AND blocks'
    plans, or None to decline (the scheduler then computes them itself).
    Declining is the safety valve: a planner bound to one canonical tree
    must not serve a different tree scheduled re-entrantly on the same
    thread.
    """
    previous = getattr(_PLANNER_STATE, "planner", None)
    _PLANNER_STATE.planner = planner
    try:
        yield
    finally:
        _PLANNER_STATE.planner = previous


def _block_plans(tree: DnfTree) -> list[BlockPlan]:
    """All AND blocks' plans, through the installed planner when present."""
    planner = current_block_planner()
    if planner is not None:
        plans = planner(tree)
        if plans is not None:
            return plans
    return [and_block_plan(tree, i) for i in range(tree.n_ands)]


def _ratio(cost: float, prob: float) -> float:
    """``C/p`` with the conventional guards for ``p = 0``."""
    if prob <= 0.0:
        return math.inf if cost > 0.0 else 0.0
    return cost / prob


class _StaticAndOrdered(Scheduler):
    """Sort isolated AND blocks by a (cost, prob) key; concatenate."""

    def _key(self, cost: float, prob: float) -> float:
        raise NotImplementedError

    def schedule(self, tree: DnfTree) -> Schedule:
        plans = _block_plans(tree)
        order = sorted(
            range(tree.n_ands),
            key=lambda i: (self._key(plans[i][1], plans[i][2]), i),
        )
        schedule: list[int] = []
        for i in order:
            schedule.extend(plans[i][0])
        return tuple(schedule)


class _DynamicAndOrdered(Scheduler):
    """Greedy block selection with marginal (prefix-aware) AND costs."""

    def _key(self, cost: float, prob: float) -> float:
        raise NotImplementedError

    def schedule(self, tree: DnfTree) -> Schedule:
        plans = _block_plans(tree)
        prefix = DnfPrefixCost(tree)
        remaining = list(range(tree.n_ands))
        schedule: list[int] = []
        while remaining:
            best_and = remaining[0]
            best_key = math.inf
            for i in remaining:
                marginal = prefix.peek_block(plans[i][0])
                key = self._key(marginal, plans[i][2])
                if key < best_key:
                    best_key = key
                    best_and = i
            remaining.remove(best_and)
            for g in plans[best_and][0]:
                prefix.push(g)
            schedule.extend(plans[best_and][0])
        return tuple(schedule)


@register_scheduler
class AndOrderedDecreasingP(_StaticAndOrdered):
    """ANDs by decreasing success probability (static only, as in the paper)."""

    name: ClassVar[str] = "and-dec-p"
    paper_label: ClassVar[str] = "AND-ord., dec. p, stat"

    def _key(self, cost: float, prob: float) -> float:
        return -prob


@register_scheduler
class AndOrderedIncreasingCStatic(_StaticAndOrdered):
    """ANDs by increasing isolated expected cost."""

    name: ClassVar[str] = "and-inc-c-static"
    paper_label: ClassVar[str] = "AND-ord., inc. C, stat"

    def _key(self, cost: float, prob: float) -> float:
        return cost


@register_scheduler
class AndOrderedIncreasingCDynamic(_DynamicAndOrdered):
    """ANDs by increasing *marginal* expected cost given the chosen prefix."""

    name: ClassVar[str] = "and-inc-c-dynamic"
    paper_label: ClassVar[str] = "AND-ord., inc. C, dyn"

    def _key(self, cost: float, prob: float) -> float:
        return cost


@register_scheduler
class AndOrderedIncreasingCOverPStatic(_StaticAndOrdered):
    """ANDs by increasing isolated cost / success probability."""

    name: ClassVar[str] = "and-inc-c-over-p-static"
    paper_label: ClassVar[str] = "AND-ord., inc. C/p, stat"

    def _key(self, cost: float, prob: float) -> float:
        return _ratio(cost, prob)


@register_scheduler
class AndOrderedIncreasingCOverPDynamic(_DynamicAndOrdered):
    """ANDs by increasing marginal cost / success probability — the paper's winner."""

    name: ClassVar[str] = "and-inc-c-over-p-dynamic"
    paper_label: ClassVar[str] = "AND-ord., inc. C/p, dyn"

    def _key(self, cost: float, prob: float) -> float:
        return _ratio(cost, prob)
