"""The exhaustive optimum wrapped as a registry scheduler.

Lets sessions, the CLI and comparison harnesses treat "solve to optimality"
as just another named scheduler (``"optimal"``) — with the usual caveat that
it is exponential and budget-guarded.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.heuristics.base import Scheduler, register_scheduler
from repro.core.schedule import Schedule
from repro.core.tree import DnfTree

__all__ = ["ExhaustiveOptimal"]


@register_scheduler
class ExhaustiveOptimal(Scheduler):
    """Branch-and-bound exhaustive search over depth-first schedules.

    Optimal overall by Theorem 2. Exponential: use on small trees or with a
    generous ``node_budget`` and patience.
    """

    name: ClassVar[str] = "optimal"
    paper_label: ClassVar[str] = "Optimal (exhaustive)"

    def __init__(self, node_budget: int = 5_000_000, warm_start: bool = True) -> None:
        self.node_budget = node_budget
        self.warm_start = warm_start

    def schedule(self, tree: DnfTree) -> Schedule:
        from repro.core.dnf_optimal import optimal_depth_first  # avoid import cycle

        result = optimal_depth_first(
            tree, node_budget=self.node_budget, warm_start=self.warm_start
        )
        return result.schedule

    def __repr__(self) -> str:
        return f"ExhaustiveOptimal(node_budget={self.node_budget})"
