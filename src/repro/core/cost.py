"""Expected-cost evaluation of schedules (paper §II, §IV-A).

Two analytic evaluators:

* :func:`and_tree_cost` — AND-trees. In an AND-tree every leaf preceding the
  current one in the schedule *was* evaluated (evaluation proceeds while all
  leaves are TRUE), so the cache content is deterministic and the expected
  cost has a simple closed form:

  ``C = sum_j  (prod_{i before j} p_i) * (d_j - max_{i before j, same stream} d_i)^+ * c(S(j))``

* :func:`dnf_schedule_cost` / :class:`DnfPrefixCost` — DNF trees,
  implementing Proposition 2. The expected cost of acquiring the ``t``-th
  item of stream ``S_k`` for leaf ``l_{i,j}`` is the product of three
  probabilities (item not already acquired; no fully-evaluated AND is TRUE;
  all earlier leaves of the same AND are TRUE) times ``c(S_k)``.
  :class:`DnfPrefixCost` evaluates prefixes *incrementally* with O(d·N) work
  per pushed leaf and supports undo, which is what the branch-and-bound
  exhaustive search and the dynamic AND-ordered heuristics build on.

The evaluators here are cross-validated against the exponential reference
evaluator (:mod:`repro.core.exact`) and the Monte-Carlo estimator
(:mod:`repro.core.montecarlo`) in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.schedule import Schedule, validate_schedule
from repro.core.tree import AndTree, DnfTree
from repro.errors import InvalidScheduleError

__all__ = [
    "and_tree_cost",
    "dnf_schedule_cost",
    "schedule_cost",
    "DnfPrefixCost",
    "PushToken",
    "item_acquisition_probabilities",
    "expected_stream_items",
]


def and_tree_cost(
    tree: AndTree,
    schedule: Sequence[int],
    *,
    shared: bool = True,
    validate: bool = True,
) -> float:
    """Expected cost of evaluating an AND-tree along ``schedule``.

    Parameters
    ----------
    shared:
        When True (the paper's model) data items persist in memory, so a leaf
        only pays for items beyond the deepest same-stream prefix already
        fetched. When False each leaf pays its full ``d * c`` (the cache-less
        ablation; equals the read-once formula on read-once trees).
    """
    if validate:
        schedule = validate_schedule(tree, schedule)
    costs = tree.costs
    leaves = tree.leaves
    cached: dict[str, int] = {}
    prob_prefix_true = 1.0
    total = 0.0
    for idx in schedule:
        leaf = leaves[idx]
        have = cached.get(leaf.stream, 0) if shared else 0
        missing = leaf.items - have
        if missing > 0:
            total += prob_prefix_true * missing * costs[leaf.stream]
            if shared:
                cached[leaf.stream] = leaf.items
        prob_prefix_true *= leaf.prob
    return total


@dataclass(frozen=True, slots=True)
class PushToken:
    """Opaque undo token returned by :meth:`DnfPrefixCost.push`."""

    gindex: int
    and_index: int
    stream: str
    old_depth: int
    contribution: float
    completed: bool
    old_prefix_prob: float
    old_not_acquired: tuple[float, ...]


class DnfPrefixCost:
    """Incremental Proposition-2 evaluator over a growing schedule prefix.

    Push leaves in schedule order with :meth:`push`; :attr:`total` is, at any
    point, the exact expected acquisition cost incurred by the prefix — i.e.
    the sum of the ``C_{i,j,t}`` terms of Proposition 2 over the pushed
    leaves. Because every term is non-negative, :attr:`total` is a valid
    lower bound on the cost of any completion of the prefix, which the
    exhaustive optimizer exploits for pruning. :meth:`undo` reverses the most
    recent un-undone push (LIFO order).

    Internal state per the paper's notation:

    * ``prefix_prob[i]`` — probability that all *pushed* leaves of AND ``i``
      evaluate TRUE (factor 3 of Prop. 2 for the next leaf of ``i``).
    * ``not_acquired[(k, t)]`` — probability that item ``t`` of stream ``k``
      has not been acquired by any pushed leaf, i.e. the product over the
      pushed members of ``L_{k,t}`` of (1 - probability the member was
      evaluated) (factor 1).
    * ``claimed[(k, t)]`` — AND indices owning a pushed ``L_{k,t}`` member
      (used to exempt those ANDs from factor 2).
    * ``completed`` — fully pushed ANDs (the ``A_{i,j}`` sets).
    """

    __slots__ = (
        "tree",
        "costs",
        "total",
        "placed_count",
        "prefix_prob",
        "and_false_prob",
        "completed",
        "not_acquired",
        "claimed",
        "claim_depth",
        "pushed",
    )

    def __init__(self, tree: DnfTree) -> None:
        self.tree = tree
        self.costs = tree.costs
        self.total = 0.0
        n = tree.n_ands
        self.placed_count = [0] * n
        self.prefix_prob = [1.0] * n
        self.and_false_prob = [1.0 - tree.and_success_prob(i) for i in range(n)]
        self.completed: list[int] = []
        self.not_acquired: dict[tuple[str, int], float] = {}
        self.claimed: dict[tuple[str, int], set[int]] = {}
        self.claim_depth: list[dict[str, int]] = [{} for _ in range(n)]
        self.pushed = 0

    def push(self, gindex: int) -> PushToken:
        """Append the leaf with global index ``gindex``; return an undo token."""
        tree = self.tree
        i, _ = tree.ref(gindex)
        leaf = tree.leaves[gindex]
        k = leaf.stream
        cost_per_item = self.costs[k]
        depth = self.claim_depth[i].get(k, 0)
        eval_prob = self.prefix_prob[i]

        contribution = 0.0
        old_not_acq: list[float] = []
        if leaf.items > depth:
            completed = self.completed
            false_prob = self.and_false_prob
            acc = 0.0
            for t in range(depth + 1, leaf.items + 1):
                key = (k, t)
                f1 = self.not_acquired.get(key, 1.0)
                old_not_acq.append(f1)
                claimers = self.claimed.get(key)
                f2 = 1.0
                if claimers:
                    for a in completed:
                        if a not in claimers:
                            f2 *= false_prob[a]
                else:
                    for a in completed:
                        f2 *= false_prob[a]
                acc += f1 * f2
            contribution = acc * eval_prob * cost_per_item
            # This leaf becomes AND i's L_{k,t} member for the new items.
            survive = 1.0 - eval_prob
            for offset, t in enumerate(range(depth + 1, leaf.items + 1)):
                key = (k, t)
                self.not_acquired[key] = old_not_acq[offset] * survive
                self.claimed.setdefault(key, set()).add(i)
            self.claim_depth[i][k] = leaf.items

        self.prefix_prob[i] = eval_prob * leaf.prob
        self.placed_count[i] += 1
        completed_now = self.placed_count[i] == len(tree.ands[i])
        if completed_now:
            self.completed.append(i)
        self.total += contribution
        self.pushed += 1
        return PushToken(
            gindex=gindex,
            and_index=i,
            stream=k,
            old_depth=depth,
            contribution=contribution,
            completed=completed_now,
            old_prefix_prob=eval_prob,
            old_not_acquired=tuple(old_not_acq),
        )

    def undo(self, token: PushToken) -> None:
        """Reverse the push that produced ``token`` (must be the latest push)."""
        tree = self.tree
        i = token.and_index
        leaf = tree.leaves[token.gindex]
        k = token.stream
        if token.completed:
            popped = self.completed.pop()
            if popped != i:  # pragma: no cover - misuse guard
                raise InvalidScheduleError("DnfPrefixCost.undo called out of LIFO order")
        self.placed_count[i] -= 1
        self.prefix_prob[i] = token.old_prefix_prob
        if leaf.items > token.old_depth:
            for offset, t in enumerate(range(token.old_depth + 1, leaf.items + 1)):
                key = (k, t)
                old = token.old_not_acquired[offset]
                claimers = self.claimed[key]
                claimers.discard(i)
                if old == 1.0 and not claimers:
                    del self.not_acquired[key]
                    if not claimers:
                        del self.claimed[key]
                else:
                    self.not_acquired[key] = old
            if token.old_depth > 0:
                self.claim_depth[i][k] = token.old_depth
            else:
                del self.claim_depth[i][k]
        self.total -= token.contribution
        self.pushed -= 1

    def peek_block(self, gindices: Sequence[int]) -> float:
        """Expected marginal cost of appending ``gindices`` (state unchanged).

        Used by the *dynamic* AND-ordered heuristics: the marginal expected
        cost of an AND node's leaves given the already-scheduled prefix.
        """
        tokens = [self.push(g) for g in gindices]
        marginal = sum(token.contribution for token in tokens)
        for token in reversed(tokens):
            self.undo(token)
        return marginal


def dnf_schedule_cost(
    tree: DnfTree,
    schedule: Sequence[int],
    *,
    validate: bool = True,
) -> float:
    """Expected cost of a schedule on a DNF tree (Proposition 2 closed form).

    Works for *any* schedule, depth-first or not, in ``O(|L| * D * N)`` time
    (slightly better than the paper's ``O(|L| * D * N^2)`` bound thanks to
    the incremental bookkeeping).
    """
    if validate:
        schedule = validate_schedule(tree, schedule)
    state = DnfPrefixCost(tree)
    for gindex in schedule:
        state.push(gindex)
    return state.total


def item_acquisition_probabilities(
    tree: DnfTree,
    schedule: Sequence[int],
    *,
    validate: bool = True,
) -> dict[tuple[str, int], float]:
    """Probability that each data item ``(stream, t)`` is acquired.

    A per-item breakdown of Proposition 2 — useful for energy diagnostics
    ("which sensor drains the battery?"): the expected number of items pulled
    from stream ``k`` is the sum of its per-item probabilities, and the total
    expected cost is ``sum_over_items prob * c(stream)`` (an identity the
    test-suite checks against :func:`dnf_schedule_cost`).
    """
    if validate:
        schedule = validate_schedule(tree, schedule)
    # Evaluate on a unit-cost clone of the tree so each leaf's pushed
    # contribution *is* the sum of its items' acquisition probabilities;
    # recover per-item values by differencing prefix pushes on single items.
    probabilities: dict[tuple[str, int], float] = {}
    state = DnfPrefixCost(tree)
    for gindex in schedule:
        leaf = tree.leaves[gindex]
        i, _ = tree.ref(gindex)
        depth = state.claim_depth[i].get(leaf.stream, 0)
        eval_prob = state.prefix_prob[i]
        # Mirror DnfPrefixCost.push's per-item factors before mutating state.
        for t in range(depth + 1, leaf.items + 1):
            key = (leaf.stream, t)
            f1 = state.not_acquired.get(key, 1.0)
            claimers = state.claimed.get(key)
            f2 = 1.0
            for a in state.completed:
                if not claimers or a not in claimers:
                    f2 *= state.and_false_prob[a]
            probabilities[key] = probabilities.get(key, 0.0) + f1 * f2 * eval_prob
        state.push(gindex)
    return probabilities


def expected_stream_items(
    tree: DnfTree, schedule: Sequence[int], *, validate: bool = True
) -> dict[str, float]:
    """Expected number of items acquired per stream under ``schedule``."""
    per_item = item_acquisition_probabilities(tree, schedule, validate=validate)
    out: dict[str, float] = {}
    for (stream, _), prob in per_item.items():
        out[stream] = out.get(stream, 0.0) + prob
    return out


def schedule_cost(tree: AndTree | DnfTree, schedule: Sequence[int], *, validate: bool = True) -> float:
    """Dispatch to the right analytic evaluator for ``tree``."""
    if isinstance(tree, AndTree):
        return and_tree_cost(tree, schedule, validate=validate)
    if isinstance(tree, DnfTree):
        return dnf_schedule_cost(tree, schedule, validate=validate)
    raise TypeError(
        f"no analytic evaluator for {type(tree).__name__}; "
        "use repro.core.exact.exact_schedule_cost for general trees"
    )
