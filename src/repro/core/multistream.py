"""Multi-stream predicates — paper §V future work.

The paper closes by asking what happens when a single leaf predicate reads
*several* streams (e.g. ``AVG(X,10) < MIN(Y,20)``) and whether AND-tree
scheduling stays polynomial. This module provides the machinery to study the
question empirically:

* :class:`MultiLeaf` — a leaf with per-stream item requirements;
* :class:`MultiStreamAndTree` — an AND-tree over such leaves;
* :func:`multi_and_tree_cost` — exact expected schedule cost (the cache is
  still deterministic along an AND-tree's prefix, so the closed form
  generalizes directly);
* :func:`brute_force_multi` — exact optimum by enumeration;
* :func:`adaptive_greedy_multi` — the natural generalization of the greedy
  idea: repeatedly evaluate the leaf minimizing (marginal cost given the
  current cache) / (failure probability);
* :func:`smith_multi_order` — the static Smith-style baseline (full
  acquisition cost / failure probability, no cache awareness).

On single-stream instances all of this reduces exactly to the classical
machinery (property-tested); on genuinely multi-stream instances the greedy
is *not* always optimal — evidence that the paper's open question is not
trivially polynomial (see ``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.leaf import Leaf
from repro.errors import BudgetExceededError, InvalidLeafError, InvalidTreeError

__all__ = [
    "MultiLeaf",
    "MultiStreamAndTree",
    "multi_and_tree_cost",
    "brute_force_multi",
    "adaptive_greedy_multi",
    "smith_multi_order",
]


@dataclass(frozen=True)
class MultiLeaf:
    """A predicate reading several streams: ``requirements[stream] = items``."""

    requirements: tuple[tuple[str, int], ...]
    prob: float
    label: str = field(default="", compare=False)

    def __init__(
        self,
        requirements: Mapping[str, int] | Sequence[tuple[str, int]],
        prob: float,
        label: str = "",
    ) -> None:
        if isinstance(requirements, Mapping):
            pairs = tuple(sorted(requirements.items()))
        else:
            pairs = tuple(sorted(requirements))
        if not pairs:
            raise InvalidLeafError("a multi-stream leaf needs at least one stream")
        seen = set()
        for stream, items in pairs:
            if not isinstance(stream, str) or not stream:
                raise InvalidLeafError(f"invalid stream name {stream!r}")
            if stream in seen:
                raise InvalidLeafError(f"duplicate stream {stream!r} in one leaf")
            seen.add(stream)
            if not isinstance(items, int) or items < 1:
                raise InvalidLeafError(f"items for {stream!r} must be an int >= 1, got {items!r}")
        if not 0.0 <= prob <= 1.0 or math.isnan(prob):
            raise InvalidLeafError(f"prob must be in [0, 1], got {prob!r}")
        object.__setattr__(self, "requirements", pairs)
        object.__setattr__(self, "prob", float(prob))
        object.__setattr__(self, "label", label)

    @classmethod
    def from_leaf(cls, leaf: Leaf) -> "MultiLeaf":
        """Wrap a classical single-stream leaf."""
        return cls({leaf.stream: leaf.items}, leaf.prob, leaf.label)

    @property
    def fail(self) -> float:
        return 1.0 - self.prob

    @property
    def streams(self) -> tuple[str, ...]:
        return tuple(stream for stream, _ in self.requirements)

    def marginal_cost(self, costs: Mapping[str, float], cached: Mapping[str, int]) -> float:
        """Acquisition cost given per-stream cached item counts."""
        total = 0.0
        for stream, items in self.requirements:
            missing = items - cached.get(stream, 0)
            if missing > 0:
                total += missing * costs[stream]
        return total

    def full_cost(self, costs: Mapping[str, float]) -> float:
        return self.marginal_cost(costs, {})


@dataclass(frozen=True)
class MultiStreamAndTree:
    """AND of multi-stream leaves (the open problem's setting)."""

    leaves: tuple[MultiLeaf, ...]
    costs: Mapping[str, float]

    def __init__(
        self, leaves: Sequence[MultiLeaf], costs: Mapping[str, float] | None = None,
        *, default_cost: float = 1.0,
    ) -> None:
        leaves = tuple(leaves)
        if not leaves:
            raise InvalidTreeError("an AND-tree needs at least one leaf")
        table = dict(costs) if costs is not None else {}
        for leaf in leaves:
            for stream, _ in leaf.requirements:
                if stream not in table:
                    if costs is not None:
                        raise InvalidTreeError(f"no cost given for stream {stream!r}")
                    table[stream] = default_cost
        object.__setattr__(self, "leaves", leaves)
        object.__setattr__(self, "costs", table)

    @property
    def m(self) -> int:
        return len(self.leaves)

    @property
    def streams(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for leaf in self.leaves:
            for stream, _ in leaf.requirements:
                seen.setdefault(stream, None)
        return tuple(seen)


def multi_and_tree_cost(tree: MultiStreamAndTree, schedule: Sequence[int]) -> float:
    """Expected cost of a schedule: same shape as the single-stream closed form.

    Along an AND-tree schedule every earlier leaf was evaluated, so the cache
    is deterministic and the expectation telescopes.
    """
    order = tuple(schedule)
    if sorted(order) != list(range(tree.m)):
        raise InvalidTreeError(f"schedule {order!r} is not a permutation of the leaves")
    cached: dict[str, int] = {}
    prob_prefix = 1.0
    total = 0.0
    for idx in order:
        leaf = tree.leaves[idx]
        total += prob_prefix * leaf.marginal_cost(tree.costs, cached)
        for stream, items in leaf.requirements:
            if items > cached.get(stream, 0):
                cached[stream] = items
        prob_prefix *= leaf.prob
    return total


def brute_force_multi(
    tree: MultiStreamAndTree, *, max_leaves: int = 9
) -> tuple[tuple[int, ...], float]:
    """Exact optimum by enumerating all schedules (identical leaves deduped)."""
    if tree.m > max_leaves:
        raise BudgetExceededError(f"brute force limited to {max_leaves} leaves, tree has {tree.m}")
    signature = [(leaf.requirements, leaf.prob) for leaf in tree.leaves]
    best_cost = math.inf
    best: tuple[int, ...] = tuple(range(tree.m))
    seen: set[tuple] = set()
    for perm in itertools.permutations(range(tree.m)):
        sig = tuple(signature[idx] for idx in perm)
        if sig in seen:
            continue
        seen.add(sig)
        cost = multi_and_tree_cost(tree, perm)
        if cost < best_cost - 1e-15:
            best_cost = cost
            best = perm
    return best, best_cost


def adaptive_greedy_multi(tree: MultiStreamAndTree) -> tuple[int, ...]:
    """Cache-aware greedy: next = argmin marginal_cost(cache) / q.

    Reduces to a Smith-like rule on read-once instances; *not* optimal in
    general (which is the empirical content of the paper's open question).
    """
    remaining = list(range(tree.m))
    cached: dict[str, int] = {}
    schedule: list[int] = []
    while remaining:
        best_idx = remaining[0]
        best_key = math.inf
        for idx in remaining:
            leaf = tree.leaves[idx]
            marginal = leaf.marginal_cost(tree.costs, cached)
            if leaf.fail <= 0.0:
                key = math.inf if marginal > 0.0 else 0.0
            else:
                key = marginal / leaf.fail
            if key < best_key:
                best_key = key
                best_idx = idx
        remaining.remove(best_idx)
        schedule.append(best_idx)
        for stream, items in tree.leaves[best_idx].requirements:
            if items > cached.get(stream, 0):
                cached[stream] = items
    return tuple(schedule)


def smith_multi_order(tree: MultiStreamAndTree) -> tuple[int, ...]:
    """Static Smith baseline: sort by full acquisition cost / q (no cache)."""

    def key(idx: int) -> tuple[float, int]:
        leaf = tree.leaves[idx]
        cost = leaf.full_cost(tree.costs)
        if leaf.fail <= 0.0:
            return (math.inf if cost > 0.0 else 0.0, idx)
        return (cost / leaf.fail, idx)

    return tuple(sorted(range(tree.m), key=key))
