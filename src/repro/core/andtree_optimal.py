"""Optimal scheduling of AND-trees (paper §III).

Three schedulers:

* :func:`read_once_order` — Smith's greedy for the *read-once* model
  (sort leaves by non-decreasing ``d * c / q``; Smith 1989, [7] in the
  paper). Optimal when every stream occurs in a single leaf, but suboptimal
  in the shared model (paper §II-A, Figure 4).
* :func:`algorithm1_order` — the paper's **Algorithm 1**, optimal for the
  shared model. A greedy over *stream prefixes*: repeatedly pick, over all
  streams and over all prefixes of each stream's remaining leaves taken by
  increasing ``d``, the prefix minimizing (expected marginal cost) /
  (probability the prefix fails), and schedule it.
* :func:`brute_force_and_tree` — exact reference by enumeration of all
  ``m!`` schedules (with identical-leaf deduplication), used to validate
  Algorithm 1's optimality on small instances.

All return schedules as tuples of leaf indices (see
:mod:`repro.core.schedule`).
"""

from __future__ import annotations

import itertools
import math
from typing import Mapping

from repro.core.cost import and_tree_cost
from repro.core.leaf import Leaf
from repro.core.schedule import Schedule
from repro.core.tree import AndTree
from repro.errors import BudgetExceededError

__all__ = [
    "smith_ratio",
    "read_once_order",
    "algorithm1_order",
    "brute_force_and_tree",
]


def smith_ratio(leaf: Leaf, costs: Mapping[str, float]) -> float:
    """Smith's index ``d * c / q`` (infinite for leaves that cannot fail)."""
    q = leaf.fail
    full_cost = leaf.items * costs[leaf.stream]
    if q <= 0.0:
        return math.inf if full_cost > 0.0 else 0.0
    return full_cost / q

def read_once_order(tree: AndTree) -> Schedule:
    """Smith's rule: sort leaves by non-decreasing ``d*c/q`` (ties: index order).

    Optimal for read-once AND-trees; used as the baseline of Figure 4.
    """
    keys = [(smith_ratio(leaf, tree.costs), idx) for idx, leaf in enumerate(tree.leaves)]
    keys.sort()
    return tuple(idx for _, idx in keys)


def algorithm1_order(
    tree: AndTree,
    *,
    initial_items: Mapping[str, int] | None = None,
) -> Schedule:
    """The paper's Algorithm 1: optimal schedule for a shared AND-tree.

    Parameters
    ----------
    initial_items:
        Optional pre-acquired item counts per stream (the ``NItems`` array).
        Defaults to zero everywhere; non-zero values let callers schedule an
        AND node given items already fetched deterministically.

    Notes
    -----
    Each round scans, for every stream, its remaining leaves by increasing
    ``d`` and computes after each leaf the ratio of the prefix's expected
    marginal cost to its failure probability; the globally minimal ratio
    designates the stream prefix to append next. Complexity ``O(m^2)``.
    """
    leaves = tree.leaves
    costs = tree.costs
    by_stream = tree.leaves_by_stream()  # stream -> indices sorted by (d, idx)
    n_items = {stream: 0 for stream in by_stream}
    if initial_items:
        for stream, count in initial_items.items():
            if stream in n_items:
                n_items[stream] = int(count)
    # Drop leaves already covered by initial items? No: they still must be
    # *evaluated* (their truth value matters) — they are simply free, ratio 0,
    # and the scan below schedules them first naturally.
    schedule: list[int] = []
    while any(by_stream.values()):
        best_ratio = math.inf
        best_stream: str | None = None
        best_cut = -1  # position of l_{j0} within its stream list
        for stream, indices in by_stream.items():
            if not indices:
                continue
            cost_per_item = costs[stream]
            acc_cost = 0.0
            proba = 1.0
            num = n_items[stream]
            for pos, idx in enumerate(indices):
                leaf = leaves[idx]
                acc_cost += proba * max(0, leaf.items - num) * cost_per_item
                proba *= leaf.prob
                num = max(num, leaf.items)
                denom = 1.0 - proba
                if denom > 0.0:
                    ratio = acc_cost / denom
                elif acc_cost == 0.0:
                    ratio = 0.0  # free, unfailing prefix: schedule immediately
                else:
                    ratio = math.inf
                if ratio < best_ratio:
                    best_ratio = ratio
                    best_stream = stream
                    best_cut = pos
        if best_stream is None:
            # Every remaining prefix has ratio +inf (certain-success leaves
            # with positive cost). Any order is optimal; flush in scan order.
            for stream, indices in by_stream.items():
                for idx in indices:
                    schedule.append(idx)
                    n_items[stream] = max(n_items[stream], leaves[idx].items)
                indices.clear()
            break
        chosen = by_stream[best_stream]
        cut_items = leaves[chosen[best_cut]].items
        # Schedule every remaining leaf of the stream with d <= d_{j0},
        # in increasing (d, index) order (Proposition 1).
        taken = [idx for idx in chosen if leaves[idx].items <= cut_items]
        schedule.extend(taken)
        by_stream[best_stream] = [idx for idx in chosen if leaves[idx].items > cut_items]
        n_items[best_stream] = max(n_items[best_stream], cut_items)
    return tuple(schedule)


def brute_force_and_tree(
    tree: AndTree,
    *,
    max_leaves: int = 9,
) -> tuple[Schedule, float]:
    """Exact optimum by enumerating all leaf permutations (small trees only).

    Permutations that only swap *identical* leaves (same stream, items and
    probability) are enumerated once. Raises
    :class:`~repro.errors.BudgetExceededError` beyond ``max_leaves`` leaves.
    """
    m = tree.m
    if m > max_leaves:
        raise BudgetExceededError(
            f"brute force limited to {max_leaves} leaves, tree has {m}"
        )
    signature = [(leaf.stream, leaf.items, leaf.prob) for leaf in tree.leaves]
    best_cost = math.inf
    best: Schedule = tuple(range(m))
    seen: set[tuple] = set()
    for perm in itertools.permutations(range(m)):
        sig = tuple(signature[idx] for idx in perm)
        if sig in seen:
            continue
        seen.add(sig)
        cost = and_tree_cost(tree, perm, validate=False)
        if cost < best_cost - 1e-15:
            best_cost = cost
            best = perm
    return best, best_cost
