"""Scheduling general AND-OR trees (beyond the paper's AND/DNF classes).

The complexity of PAOTR on general AND-OR trees is open even in the
read-once model (paper §II); this module provides the tooling to explore it:

* :func:`recursive_ratio_order` — the classical bottom-up heuristic: each
  internal node aggregates its children's (expected cost, success
  probability) pairs, ordering children by ``C/q`` under AND nodes and
  ``C/p`` under OR nodes; the schedule is the induced depth-first leaf
  order. Exact on read-once depth-2 trees, a heuristic otherwise (and
  sharing-oblivious).
* :func:`optimal_general` — exact optimum over all leaf permutations using
  the exact shared-cost evaluator; exponential, budget-guarded, for small
  trees and ground-truthing.
"""

from __future__ import annotations

import itertools
import math
from typing import Union

from repro.core.exact import exact_schedule_cost
from repro.core.schedule import Schedule
from repro.core.tree import AndNode, AndTree, DnfTree, LeafNode, Node, OrNode, QueryTree
from repro.errors import BudgetExceededError, InvalidTreeError

__all__ = ["recursive_ratio_order", "optimal_general"]


def _as_query_tree(tree: Union[QueryTree, AndTree, DnfTree]) -> QueryTree:
    if isinstance(tree, QueryTree):
        return tree
    if isinstance(tree, AndTree):
        return tree.to_dnf().to_query_tree()
    return tree.to_query_tree()


def recursive_ratio_order(tree: Union[QueryTree, AndTree, DnfTree]) -> Schedule:
    """Bottom-up ratio heuristic for arbitrary AND-OR trees.

    Returns a leaf order (global indices). Aggregation per node, assuming
    children are evaluated in the chosen order and treating subtrees as
    independent (read-once reasoning):

    * AND: children by increasing ``C/q``; ``C = sum C_i * prod_{j<i} p_j``;
      ``p = prod p_i``;
    * OR: children by increasing ``C/p``; ``C = sum C_i * prod_{j<i} q_j``;
      ``p = 1 - prod q_i``.
    """
    qtree = _as_query_tree(tree)
    costs = qtree.costs

    leaf_counter = itertools.count()

    def ratio(cost: float, denom: float) -> float:
        if denom <= 0.0:
            return math.inf if cost > 0.0 else 0.0
        return cost / denom

    def visit(node: Node) -> tuple[float, float, list[int]]:
        """Returns (expected cost, success prob, leaf order)."""
        if isinstance(node, LeafNode):
            index = next(leaf_counter)
            leaf = node.leaf
            return leaf.items * costs[leaf.stream], leaf.prob, [index]
        if not isinstance(node, (AndNode, OrNode)):
            raise InvalidTreeError(f"unexpected node of type {type(node).__name__}")
        children = [visit(child) for child in node.children]
        if isinstance(node, AndNode):
            children.sort(key=lambda entry: ratio(entry[0], 1.0 - entry[1]))
            cost = 0.0
            carry = 1.0
            prob = 1.0
            order: list[int] = []
            for child_cost, child_prob, child_order in children:
                cost += carry * child_cost
                carry *= child_prob
                prob *= child_prob
                order.extend(child_order)
            return cost, prob, order
        children.sort(key=lambda entry: ratio(entry[0], entry[1]))
        cost = 0.0
        carry = 1.0
        fail = 1.0
        order = []
        for child_cost, child_prob, child_order in children:
            cost += carry * child_cost
            carry *= 1.0 - child_prob
            fail *= 1.0 - child_prob
            order.extend(child_order)
        return cost, 1.0 - fail, order

    _, _, order = visit(qtree.root)
    return tuple(order)


def optimal_general(
    tree: Union[QueryTree, AndTree, DnfTree],
    *,
    max_leaves: int = 8,
    max_states: int = 2_000_000,
) -> tuple[Schedule, float]:
    """Exact optimum over all leaf permutations of a general tree.

    Uses the exact shared-cost evaluator per permutation; ``O(m! * 2^m)``
    worst case — ground truth for small instances only.
    """
    qtree = _as_query_tree(tree)
    m = len(qtree.leaves)
    if m > max_leaves:
        raise BudgetExceededError(f"general optimum limited to {max_leaves} leaves, tree has {m}")
    signature = [(leaf.stream, leaf.items, leaf.prob) for leaf in qtree.leaves]
    best: Schedule = tuple(range(m))
    best_cost = math.inf
    seen: set[tuple] = set()
    for perm in itertools.permutations(range(m)):
        sig = tuple(signature[idx] for idx in perm)
        if sig in seen:
            continue
        seen.add(sig)
        cost = exact_schedule_cost(qtree, perm, max_states=max_states)
        if cost < best_cost - 1e-15:
            best_cost = cost
            best = perm
    return best, best_cost
