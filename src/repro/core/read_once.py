"""Read-once DNF scheduling (Greiner, Hayward, Jankowska, Molloy — [6]).

The classical result the paper builds on: for *read-once* DNF trees an
optimal schedule is depth-first with

* leaves inside each AND ordered by Smith's rule (increasing ``d c / q``);
* AND blocks ordered by increasing ``C_i / p_i``, where ``C_i`` is the AND's
  expected (read-once) cost under its Smith order and ``p_i`` its success
  probability.

:func:`greiner_read_once_order` implements that algorithm verbatim. It is
registered as the ``"greiner-read-once"`` scheduler: on read-once instances
it is provably optimal (property-tested against the exhaustive search); on
shared instances it is just another baseline — and measurably weaker than
the paper's shared-aware heuristics, which is the paper's point.
"""

from __future__ import annotations

import math
from typing import ClassVar

from repro.core.andtree_optimal import read_once_order
from repro.core.cost import and_tree_cost
from repro.core.heuristics.base import Scheduler, register_scheduler
from repro.core.schedule import Schedule
from repro.core.tree import DnfTree

__all__ = ["greiner_read_once_order", "GreinerReadOnce"]


def greiner_read_once_order(tree: DnfTree) -> Schedule:
    """The read-once-optimal depth-first schedule of [6].

    Within each AND node: Smith's rule. Across AND nodes: increasing
    ``C_i / p_i``. Costs are computed with the *read-once* formula (no item
    reuse), which is what makes the algorithm exact in the read-once model
    and a heuristic in the shared model.
    """
    blocks: list[tuple[float, int, list[int]]] = []
    for i in range(tree.n_ands):
        and_tree = tree.and_tree(i)
        order = read_once_order(and_tree)
        cost = and_tree_cost(and_tree, order, shared=False, validate=False)
        prob = tree.and_success_prob(i)
        if prob <= 0.0:
            ratio = math.inf if cost > 0.0 else 0.0
        else:
            ratio = cost / prob
        blocks.append((ratio, i, [tree.gindex(i, j) for j in order]))
    blocks.sort(key=lambda block: (block[0], block[1]))
    schedule: list[int] = []
    for _, _, gindices in blocks:
        schedule.extend(gindices)
    return tuple(schedule)


@register_scheduler
class GreinerReadOnce(Scheduler):
    """[6]'s read-once-optimal algorithm, as a registry scheduler."""

    name: ClassVar[str] = "greiner-read-once"
    paper_label: ClassVar[str] = "Read-once optimal [6]"

    def schedule(self, tree: DnfTree) -> Schedule:
        return greiner_read_once_order(tree)
