"""Short-circuit resolution of AND-OR trees.

This module factors out the evaluation semantics shared by the execution
engine, the Monte-Carlo estimator and the exact schedule-cost evaluator:

* an AND node resolves FALSE as soon as one child is FALSE and TRUE once all
  children are TRUE;
* an OR node resolves TRUE as soon as one child is TRUE and FALSE once all
  children are FALSE;
* a leaf is *skipped* (never evaluated, costing nothing) whenever one of its
  ancestors is already resolved;
* the query stops as soon as the root is resolved.

:class:`TreeIndex` precomputes the structure once per tree;
:class:`ResolutionState` is the cheap mutable evaluation state.
"""

from __future__ import annotations

from typing import Union

from repro.core.tree import AndNode, AndTree, DnfTree, LeafNode, Node, OrNode, QueryTree

__all__ = [
    "TreeIndex",
    "ResolutionState",
    "UNRESOLVED",
    "TRUE",
    "FALSE",
    "KIND_LEAF",
    "KIND_AND",
    "KIND_OR",
]

UNRESOLVED = 0
TRUE = 1
FALSE = 2

#: Node-kind encoding used by TreeIndex.kinds (and every consumer of it).
KIND_LEAF = 0
KIND_AND = 1
KIND_OR = 2

# Backwards-compatible private aliases (internal call sites).
_KIND_LEAF = KIND_LEAF
_KIND_AND = KIND_AND
_KIND_OR = KIND_OR


def _as_query_tree(tree: Union[QueryTree, AndTree, DnfTree]) -> QueryTree:
    if isinstance(tree, QueryTree):
        return tree
    if isinstance(tree, AndTree):
        return tree.to_dnf().to_query_tree()
    return tree.to_query_tree()


class TreeIndex:
    """Immutable structural index of an AND-OR tree for fast resolution.

    Node ids are assigned in depth-first pre-order with the root as node 0.
    Leaf *global indices* follow the tree's left-to-right leaf order, matching
    :attr:`QueryTree.leaves` (and, for trees built from a :class:`DnfTree`,
    matching the DNF global leaf indices).
    """

    __slots__ = (
        "tree",
        "kinds",
        "children",
        "parent",
        "leaf_node_ids",
        "leaf_ancestors",
        "n_nodes",
    )

    def __init__(self, tree: Union[QueryTree, AndTree, DnfTree]) -> None:
        qtree = _as_query_tree(tree)
        self.tree = qtree
        kinds: list[int] = []
        children: list[list[int]] = []
        parent: list[int] = []
        leaf_node_ids: list[int] = []

        def visit(node: Node, parent_id: int) -> int:
            node_id = len(kinds)
            if isinstance(node, LeafNode):
                kinds.append(_KIND_LEAF)
            elif isinstance(node, AndNode):
                kinds.append(_KIND_AND)
            elif isinstance(node, OrNode):
                kinds.append(_KIND_OR)
            else:  # pragma: no cover - tree validation prevents this
                raise TypeError(f"unknown node type {type(node)!r}")
            children.append([])
            parent.append(parent_id)
            if isinstance(node, LeafNode):
                leaf_node_ids.append(node_id)
            else:
                for child in node.children:
                    child_id = visit(child, node_id)
                    children[node_id].append(child_id)
            return node_id

        visit(qtree.root, -1)
        self.kinds = tuple(kinds)
        self.children = tuple(tuple(ids) for ids in children)
        self.parent = tuple(parent)
        self.leaf_node_ids = tuple(leaf_node_ids)
        self.n_nodes = len(kinds)
        ancestors: list[tuple[int, ...]] = []
        for node_id in leaf_node_ids:
            path = []
            cursor = parent[node_id]
            while cursor >= 0:
                path.append(cursor)
                cursor = parent[cursor]
            ancestors.append(tuple(path))
        self.leaf_ancestors = tuple(ancestors)

    def new_state(self) -> "ResolutionState":
        """Fresh evaluation state with every node unresolved."""
        return ResolutionState(self)


class ResolutionState:
    """Mutable short-circuit state: node values plus resolved-children counts."""

    __slots__ = ("index", "values", "resolved_children")

    def __init__(self, index: TreeIndex) -> None:
        self.index = index
        self.values = [UNRESOLVED] * index.n_nodes
        self.resolved_children = [0] * index.n_nodes

    def copy(self) -> "ResolutionState":
        clone = ResolutionState.__new__(ResolutionState)
        clone.index = self.index
        clone.values = list(self.values)
        clone.resolved_children = list(self.resolved_children)
        return clone

    def signature(self) -> bytes:
        """Hashable snapshot of the resolution state (for memoization)."""
        return bytes(self.values)

    @property
    def root_value(self) -> bool | None:
        """Root truth value, or ``None`` while unresolved."""
        value = self.values[0]
        return None if value == UNRESOLVED else value == TRUE

    def is_skipped(self, leaf_gindex: int) -> bool:
        """True when the leaf's evaluation is short-circuited away."""
        for ancestor in self.index.leaf_ancestors[leaf_gindex]:
            if self.values[ancestor] != UNRESOLVED:
                return True
        # A bare-leaf tree: the leaf itself resolved means "stop".
        return self.values[self.index.leaf_node_ids[leaf_gindex]] != UNRESOLVED

    def set_leaf(self, leaf_gindex: int, outcome: bool) -> None:
        """Record a leaf outcome and propagate resolutions toward the root."""
        node_id = self.index.leaf_node_ids[leaf_gindex]
        self._resolve(node_id, TRUE if outcome else FALSE)

    def _resolve(self, node_id: int, value: int) -> None:
        if self.values[node_id] != UNRESOLVED:
            return
        self.values[node_id] = value
        parent_id = self.index.parent[node_id]
        if parent_id < 0:
            return
        self.resolved_children[parent_id] += 1
        kind = self.index.kinds[parent_id]
        n_children = len(self.index.children[parent_id])
        if kind == _KIND_AND:
            if value == FALSE:
                self._resolve(parent_id, FALSE)
            elif self.resolved_children[parent_id] == n_children:
                # All children resolved and none FALSE (a FALSE child would
                # have resolved the AND already): the AND is TRUE.
                self._resolve(parent_id, TRUE)
        else:  # OR
            if value == TRUE:
                self._resolve(parent_id, TRUE)
            elif self.resolved_children[parent_id] == n_children:
                self._resolve(parent_id, FALSE)
