"""Non-linear (decision-tree) strategies — paper §V future work.

A *linear* strategy fixes one leaf order up front; a *non-linear* strategy
chooses the next leaf based on the truth values observed so far. In the
read-once case linear strategies are dominant for DNF trees (Greiner et al.),
but the paper notes this is **no longer true in the shared case** — which
motivates this module:

* :class:`StrategyNode` — an explicit decision tree over leaf evaluations;
* :func:`linear_as_strategy` — embed a schedule as the equivalent strategy
  (skipping short-circuited leaves), a correctness bridge to Prop. 2 costs;
* :func:`strategy_cost` — exact expected cost of any strategy;
* :func:`optimal_nonlinear` — exact optimal strategy by memoized dynamic
  programming over (per-AND remaining leaves, cache content) states
  (exponential; small instances only);
* :func:`find_nonlinear_gap` — random search for instances where the optimal
  non-linear strategy strictly beats the optimal linear schedule,
  demonstrating the paper's §V claim constructively.

Note the DP state does not need observed truth values beyond "which leaves
remain in which alive AND": leaves are independent and an alive AND's
evaluated leaves were necessarily all TRUE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.core.dnf_optimal import optimal_any_order
from repro.core.schedule import validate_schedule
from repro.core.tree import DnfTree
from repro.errors import BudgetExceededError

__all__ = [
    "StrategyNode",
    "strategy_cost",
    "strategy_size",
    "linear_as_strategy",
    "optimal_nonlinear",
    "find_nonlinear_gap",
    "NonlinearGap",
]


@dataclass(frozen=True)
class StrategyNode:
    """Evaluate ``leaf`` (a global index); branch on its truth value.

    ``on_true`` / ``on_false`` are either the next :class:`StrategyNode` or
    ``None``, meaning the query is resolved at that point (the tree's
    resolution semantics imply the value; no further leaf is evaluated).
    """

    leaf: int
    on_true: Union["StrategyNode", None]
    on_false: Union["StrategyNode", None]


def strategy_size(strategy: StrategyNode | None) -> int:
    """Number of decision nodes (the paper notes this can be exponential)."""
    if strategy is None:
        return 0
    return 1 + strategy_size(strategy.on_true) + strategy_size(strategy.on_false)


# ---------------------------------------------------------------------------
# Execution-state helpers shared by cost evaluation and the DP
# ---------------------------------------------------------------------------


def _initial_state(tree: DnfTree) -> tuple[frozenset[int] | None, ...]:
    """Per-AND state: frozenset of remaining leaf gindices, or None if dead."""
    return tuple(frozenset(tree.and_leaf_gindices(i)) for i in range(tree.n_ands))


def _resolved(state: tuple[frozenset[int] | None, ...]) -> bool | None:
    """Query value implied by the state, or None while open."""
    all_dead = True
    for remaining in state:
        if remaining is None:
            continue
        if not remaining:
            return True  # an alive AND ran out of leaves: all its leaves were TRUE
        all_dead = False
    return False if all_dead else None


def _apply(
    state: tuple[frozenset[int] | None, ...],
    and_index: int,
    leaf: int,
    outcome: bool,
) -> tuple[frozenset[int] | None, ...]:
    updated = list(state)
    if outcome:
        remaining = state[and_index]
        assert remaining is not None
        updated[and_index] = remaining - {leaf}
    else:
        updated[and_index] = None
    return tuple(updated)


class _Memory:
    """Stream slot bookkeeping shared by the evaluators."""

    def __init__(self, tree: DnfTree) -> None:
        slots: dict[str, int] = {}
        for leaf in tree.leaves:
            slots.setdefault(leaf.stream, len(slots))
        self.slots = slots
        self.leaf_slot = [slots[leaf.stream] for leaf in tree.leaves]
        self.leaf_items = [leaf.items for leaf in tree.leaves]
        self.leaf_cost = [tree.costs[leaf.stream] for leaf in tree.leaves]
        self.initial = tuple([0] * len(slots))

    def fetch(self, mem: tuple[int, ...], g: int) -> tuple[float, tuple[int, ...]]:
        slot = self.leaf_slot[g]
        have = mem[slot]
        items = self.leaf_items[g]
        if items <= have:
            return 0.0, mem
        cost = (items - have) * self.leaf_cost[g]
        return cost, mem[:slot] + (items,) + mem[slot + 1 :]


# ---------------------------------------------------------------------------
# Strategy cost and linear embedding
# ---------------------------------------------------------------------------


def strategy_cost(tree: DnfTree, strategy: StrategyNode | None) -> float:
    """Exact expected cost of executing ``strategy`` on ``tree``.

    Raises if the strategy evaluates a leaf that is already short-circuited
    or re-evaluates a leaf (both would be ill-formed strategies).
    """
    memory = _Memory(tree)

    def walk(
        node: StrategyNode | None,
        state: tuple[frozenset[int] | None, ...],
        mem: tuple[int, ...],
    ) -> float:
        resolved = _resolved(state)
        if node is None:
            if resolved is None:
                raise ValueError("strategy terminates before the query is resolved")
            return 0.0
        if resolved is not None:
            raise ValueError("strategy keeps evaluating after the query resolved")
        g = node.leaf
        i, _ = tree.ref(g)
        remaining = state[i]
        if remaining is None or g not in remaining:
            raise ValueError(f"strategy evaluates unavailable leaf {g}")
        fetch, mem2 = memory.fetch(mem, g)
        leaf = tree.leaves[g]
        total = fetch
        if leaf.prob > 0.0:
            total += leaf.prob * walk(node.on_true, _apply(state, i, g, True), mem2)
        if leaf.prob < 1.0:
            total += (1.0 - leaf.prob) * walk(node.on_false, _apply(state, i, g, False), mem2)
        return total

    return walk(strategy, _initial_state(tree), memory.initial)


def linear_as_strategy(tree: DnfTree, schedule: Sequence[int]) -> StrategyNode | None:
    """The decision tree equivalent to executing ``schedule`` linearly.

    Short-circuited leaves are skipped exactly as the linear executor skips
    them, so ``strategy_cost(tree, linear_as_strategy(tree, s))`` equals
    ``dnf_schedule_cost(tree, s)`` (a test-suite invariant).
    """
    schedule = validate_schedule(tree, schedule)

    def build(
        idx: int, state: tuple[frozenset[int] | None, ...]
    ) -> StrategyNode | None:
        while idx < len(schedule):
            if _resolved(state) is not None:
                return None
            g = schedule[idx]
            i, _ = tree.ref(g)
            remaining = state[i]
            if remaining is None or g not in remaining:
                idx += 1
                continue
            return StrategyNode(
                leaf=g,
                on_true=build(idx + 1, _apply(state, i, g, True)),
                on_false=build(idx + 1, _apply(state, i, g, False)),
            )
        return None

    return build(0, _initial_state(tree))


# ---------------------------------------------------------------------------
# Optimal non-linear strategy (exact DP)
# ---------------------------------------------------------------------------


def optimal_nonlinear(
    tree: DnfTree, *, max_states: int = 500_000
) -> tuple[StrategyNode | None, float]:
    """Exact optimal decision-tree strategy by memoized DP.

    Returns ``(strategy, expected_cost)``. State space is exponential in the
    number of leaves; guarded by ``max_states``.
    """
    memory = _Memory(tree)
    value_memo: dict[tuple, tuple[float, tuple[int, int] | None]] = {}

    def solve(
        state: tuple[frozenset[int] | None, ...], mem: tuple[int, ...]
    ) -> float:
        if _resolved(state) is not None:
            return 0.0
        key = (state, mem)
        hit = value_memo.get(key)
        if hit is not None:
            return hit[0]
        if len(value_memo) >= max_states:
            raise BudgetExceededError(f"non-linear DP exceeded {max_states} states")
        best = float("inf")
        best_action: tuple[int, int] | None = None
        for i, remaining in enumerate(state):
            if not remaining:
                continue
            for g in remaining:
                fetch, mem2 = memory.fetch(mem, g)
                leaf = tree.leaves[g]
                total = fetch
                if leaf.prob > 0.0:
                    total += leaf.prob * solve(_apply(state, i, g, True), mem2)
                if leaf.prob < 1.0:
                    total += (1.0 - leaf.prob) * solve(_apply(state, i, g, False), mem2)
                if total < best:
                    best = total
                    best_action = (i, g)
        value_memo[key] = (best, best_action)
        return best

    def build(
        state: tuple[frozenset[int] | None, ...], mem: tuple[int, ...]
    ) -> StrategyNode | None:
        if _resolved(state) is not None:
            return None
        _, action = value_memo[(state, mem)]
        assert action is not None
        i, g = action
        _, mem2 = memory.fetch(mem, g)
        return StrategyNode(
            leaf=g,
            on_true=build(_apply(state, i, g, True), mem2),
            on_false=build(_apply(state, i, g, False), mem2),
        )

    initial = _initial_state(tree)
    cost = solve(initial, memory.initial)
    return build(initial, memory.initial), cost


@dataclass(frozen=True)
class NonlinearGap:
    """An instance where non-linear strictly beats every linear schedule."""

    tree: DnfTree
    linear_cost: float
    nonlinear_cost: float

    @property
    def improvement(self) -> float:
        """Relative saving of the optimal strategy over the optimal schedule."""
        if self.linear_cost <= 0.0:
            return 0.0
        return 1.0 - self.nonlinear_cost / self.linear_cost


def find_nonlinear_gap(
    *,
    n_trials: int = 200,
    seed: int | None = 0,
    min_gap: float = 1e-6,
    node_budget: int = 500_000,
) -> list[NonlinearGap]:
    """Random search for shared DNF instances with a linear/non-linear gap.

    In the read-once case the result of [6] says this list must stay empty
    (a property test checks that); in the shared case gaps exist (§V).
    """
    from repro.generators.random_trees import random_dnf_tree  # local: avoid cycle

    rng = np.random.default_rng(seed)
    gaps: list[NonlinearGap] = []
    for _ in range(n_trials):
        n_ands = int(rng.integers(2, 4))
        tree = random_dnf_tree(rng, n_ands, int(rng.integers(1, 4)), 1.5, sampled=True, d_range=(1, 3))
        if tree.size > 7:
            continue
        try:
            linear = optimal_any_order(tree, node_budget=node_budget)
            _, nonlinear_cost = optimal_nonlinear(tree)
        except BudgetExceededError:
            continue
        if nonlinear_cost < linear.cost - min_gap * max(1.0, linear.cost):
            gaps.append(
                NonlinearGap(tree=tree, linear_cost=linear.cost, nonlinear_cost=nonlinear_cost)
            )
    return gaps
