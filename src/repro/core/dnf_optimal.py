"""Exhaustive optimal scheduling for DNF trees (paper §IV-B/C).

Finding an optimal schedule for a shared DNF tree is NP-complete (Theorem 3),
but Theorem 2 shows some optimal schedule is *depth-first*, so exhaustive
search only has to explore AND-block orders times within-AND leaf orders.
:func:`optimal_depth_first` does exactly that, as a depth-first search with

* **branch-and-bound pruning** — the incremental Proposition 2 evaluator
  (:class:`~repro.core.cost.DnfPrefixCost`) gives the exact expected cost of
  a schedule prefix, which (all cost terms being non-negative) lower-bounds
  every completion;
* a **heuristic warm start** — the best paper heuristic seeds the incumbent;
* **symmetry elimination** — identical leaves within an AND, and identical
  AND nodes, are expanded once per decision point;
* an explicit **node budget** — the search is exponential in the worst case.

:func:`optimal_any_order` removes the depth-first restriction (used to
validate Theorem 2 empirically), and :func:`dnf_decision` answers the
NP-complete decision problem "is there a schedule of cost at most K?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.cost import DnfPrefixCost, dnf_schedule_cost
from repro.core.heuristics.and_ordered import AndOrderedIncreasingCOverPDynamic
from repro.core.schedule import Schedule
from repro.core.tree import DnfTree
from repro.errors import BudgetExceededError

__all__ = ["SearchResult", "optimal_depth_first", "optimal_any_order", "dnf_decision"]

_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class SearchResult:
    """Outcome of an exhaustive schedule search."""

    schedule: Schedule
    cost: float
    nodes_explored: int
    complete: bool

    def __iter__(self):
        # Allow ``schedule, cost = optimal_depth_first(tree)`` unpacking while
        # keeping the richer fields available.
        yield self.schedule
        yield self.cost


def _leaf_signature(tree: DnfTree, gindex: int) -> tuple[str, int, float]:
    leaf = tree.leaves[gindex]
    return (leaf.stream, leaf.items, leaf.prob)


def _and_signature(tree: DnfTree, and_index: int) -> tuple:
    return tuple(sorted(_leaf_signature(tree, g) for g in tree.and_leaf_gindices(and_index)))


class _Search:
    """Shared DFS machinery for the depth-first and any-order searches."""

    def __init__(
        self,
        tree: DnfTree,
        *,
        depth_first: bool,
        node_budget: int,
        upper_bound: float | None,
        stop_at: float | None,
        warm_start: Sequence[int] | None,
    ) -> None:
        self.tree = tree
        self.depth_first = depth_first
        self.node_budget = node_budget
        self.stop_at = stop_at
        self.nodes = 0
        self.state = DnfPrefixCost(tree)
        self.remaining: list[list[int]] = [
            list(tree.and_leaf_gindices(i)) for i in range(tree.n_ands)
        ]
        self.current_and: int = -1
        self.prefix: list[int] = []
        self.best: Schedule | None = None
        self.best_cost = math.inf
        if warm_start is not None:
            self.best = tuple(warm_start)
            self.best_cost = dnf_schedule_cost(tree, self.best, validate=False)
        if upper_bound is not None and upper_bound < self.best_cost:
            # A bound tighter than the warm start: prune below it, but only a
            # found schedule may become the incumbent.
            self.best_cost = upper_bound
            self.best = None
        self.done = False

    # -- candidate generation with symmetry elimination -----------------

    def _candidates(self) -> list[int]:
        tree = self.tree
        if self.depth_first and self.current_and >= 0 and self.remaining[self.current_and]:
            pool_ands = [self.current_and]
        else:
            pool_ands = [i for i in range(tree.n_ands) if self.remaining[i]]
            if self.depth_first:
                # Starting a fresh AND: identical untouched ANDs are interchangeable.
                seen_and: set[tuple] = set()
                deduped = []
                for i in pool_ands:
                    sig = _and_signature(tree, i)
                    if sig in seen_and:
                        continue
                    seen_and.add(sig)
                    deduped.append(i)
                pool_ands = deduped
        out: list[int] = []
        for i in pool_ands:
            seen_leaf: set[tuple] = set()
            for g in self.remaining[i]:
                sig = _leaf_signature(tree, g)
                if sig in seen_leaf:
                    continue
                seen_leaf.add(sig)
                out.append(g)
        return out

    # -- DFS -------------------------------------------------------------

    def run(self) -> SearchResult:
        self._dfs()
        if self.best is None:
            # Upper bound excluded every schedule; report the bound-free best
            # by falling back to the warm-start heuristic.
            fallback = AndOrderedIncreasingCOverPDynamic().schedule(self.tree)
            return SearchResult(
                schedule=fallback,
                cost=dnf_schedule_cost(self.tree, fallback, validate=False),
                nodes_explored=self.nodes,
                complete=False,
            )
        return SearchResult(
            schedule=self.best,
            cost=self.best_cost,
            nodes_explored=self.nodes,
            complete=True,
        )

    def _dfs(self) -> None:
        if self.done:
            return
        self.nodes += 1
        if self.nodes > self.node_budget:
            raise BudgetExceededError(
                f"exhaustive search exceeded node budget {self.node_budget}"
            )
        if self.state.total >= self.best_cost - _EPS:
            return  # no completion can beat the incumbent
        if len(self.prefix) == self.tree.size:
            self.best = tuple(self.prefix)
            self.best_cost = self.state.total
            if self.stop_at is not None and self.best_cost <= self.stop_at + _EPS:
                self.done = True
            return
        for g in self._candidates():
            i, _ = self.tree.ref(g)
            previous_and = self.current_and
            self.remaining[i].remove(g)
            self.prefix.append(g)
            self.current_and = i
            token = self.state.push(g)
            self._dfs()
            self.state.undo(token)
            self.current_and = previous_and
            self.prefix.pop()
            self.remaining[i].append(g)
            self.remaining[i].sort()
            if self.done:
                return


def optimal_depth_first(
    tree: DnfTree,
    *,
    node_budget: int = 5_000_000,
    warm_start: bool = True,
) -> SearchResult:
    """Optimal schedule over all depth-first schedules (optimal overall, Thm. 2).

    Parameters
    ----------
    node_budget:
        Maximum DFS nodes before raising
        :class:`~repro.errors.BudgetExceededError`.
    warm_start:
        Seed the incumbent with the best paper heuristic
        (AND-ordered, increasing C/p, dynamic) to tighten pruning.
    """
    start = AndOrderedIncreasingCOverPDynamic().schedule(tree) if warm_start else None
    search = _Search(
        tree,
        depth_first=True,
        node_budget=node_budget,
        upper_bound=None,
        stop_at=None,
        warm_start=start,
    )
    return search.run()


def optimal_any_order(
    tree: DnfTree,
    *,
    node_budget: int = 5_000_000,
    warm_start: bool = True,
) -> SearchResult:
    """Optimal schedule over *all* leaf permutations (Theorem 2 validation).

    Exponentially more expensive than :func:`optimal_depth_first`; only for
    small instances.
    """
    start = AndOrderedIncreasingCOverPDynamic().schedule(tree) if warm_start else None
    search = _Search(
        tree,
        depth_first=False,
        node_budget=node_budget,
        upper_bound=None,
        stop_at=None,
        warm_start=start,
    )
    return search.run()


def dnf_decision(
    tree: DnfTree,
    bound: float,
    *,
    node_budget: int = 5_000_000,
) -> bool:
    """The NP-complete DNF-Decision problem: exists a schedule of cost <= bound?

    Searches depth-first schedules only, which is sound by Theorem 2 (if any
    schedule meets the bound, a depth-first one does).
    """
    search = _Search(
        tree,
        depth_first=True,
        node_budget=node_budget,
        # Strictly above ``bound`` so a schedule with cost == bound survives
        # the ``>= best_cost - eps`` prune and becomes the incumbent.
        upper_bound=bound + 2.0 * _EPS,
        stop_at=bound,
        warm_start=None,
    )
    # Cheap accept: the heuristic itself may already meet the bound.
    heuristic = AndOrderedIncreasingCOverPDynamic().schedule(tree)
    if dnf_schedule_cost(tree, heuristic, validate=False) <= bound + _EPS:
        return True
    result = search.run()
    return search.best is not None and search.best_cost <= bound + _EPS
