"""Leaf predicates of a boolean query tree.

A leaf is the atomic unit of the PAOTR problem (Casanova et al., IPDPS 2014):
a probabilistic boolean predicate that reads the ``items`` most recent data
items of a single sensor ``stream`` and evaluates to TRUE with probability
``prob``, independently of every other leaf.

The *shared* cost model of the paper is captured at the tree/evaluator level:
a leaf itself only declares *what* it needs (``stream``, ``items``); how much
acquiring those items costs depends on what earlier leaves already fetched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import InvalidLeafError

__all__ = ["Leaf"]


@dataclass(frozen=True, slots=True)
class Leaf:
    """A probabilistic single-stream predicate leaf.

    Parameters
    ----------
    stream:
        Name of the data stream the predicate reads (e.g. ``"A"``).
    items:
        Number of most-recent data items required, ``d_j >= 1`` in the paper's
        notation. The leaf needs items ``1..items`` (item 1 is the newest).
    prob:
        Success probability ``p_j`` in ``[0, 1]`` — the probability that the
        predicate evaluates to TRUE.
    label:
        Optional human-readable name (``"l1"``, ``"AVG(A,5) < 70"``, ...).

    Examples
    --------
    >>> leaf = Leaf("A", items=5, prob=0.75, label="AVG(A,5) < 70")
    >>> leaf.fail
    0.25
    >>> leaf.acquisition_cost({"A": 2.0})
    10.0
    """

    stream: str
    items: int
    prob: float
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.stream, str) or not self.stream:
            raise InvalidLeafError(f"leaf stream must be a non-empty string, got {self.stream!r}")
        if not isinstance(self.items, int) or isinstance(self.items, bool) or self.items < 1:
            raise InvalidLeafError(f"leaf items must be an int >= 1, got {self.items!r}")
        if not isinstance(self.prob, (int, float)) or isinstance(self.prob, bool):
            raise InvalidLeafError(f"leaf prob must be a float, got {self.prob!r}")
        if math.isnan(self.prob) or not 0.0 <= self.prob <= 1.0:
            raise InvalidLeafError(f"leaf prob must be in [0, 1], got {self.prob!r}")
        object.__setattr__(self, "prob", float(self.prob))

    @property
    def fail(self) -> float:
        """Failure probability ``q_j = 1 - p_j``."""
        return 1.0 - self.prob

    def acquisition_cost(self, costs: Mapping[str, float]) -> float:
        """Full cost ``d_j * c(S(j))`` of evaluating this leaf from an empty cache."""
        return self.items * costs[self.stream]

    def marginal_cost(self, costs: Mapping[str, float], cached_items: int) -> float:
        """Cost of evaluating this leaf when ``cached_items`` items of its stream are cached."""
        return max(0, self.items - cached_items) * costs[self.stream]

    def with_prob(self, prob: float) -> "Leaf":
        """Return a copy of this leaf with a different success probability."""
        return replace(self, prob=prob)

    def describe(self) -> str:
        """One-line summary, e.g. ``A[5] p=0.75 (AVG(A,5) < 70)``."""
        base = f"{self.stream}[{self.items}] p={self.prob:g}"
        return f"{base} ({self.label})" if self.label else base
