"""Schedules: linear leaf-evaluation orders (the paper's *linear strategies*).

A schedule for a tree with ``m`` leaves is a permutation of the global leaf
indices ``0..m-1``. For DNF trees, *depth-first* schedules — those that
process AND nodes one at a time — play a special role: Theorem 2 of the paper
proves that some optimal schedule is always depth-first, which is what makes
exhaustive search (and the AND-ordered heuristics) tractable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.errors import InvalidScheduleError

__all__ = [
    "Schedule",
    "validate_schedule",
    "identity_schedule",
    "random_schedule",
    "is_depth_first",
    "depth_first_blocks",
    "make_depth_first",
    "as_depth_first_orders",
]

#: A schedule is a tuple of global leaf indices.
Schedule = tuple[int, ...]

_TreeLike = AndTree | DnfTree | QueryTree


def _tree_size(tree: _TreeLike) -> int:
    return len(tree.leaves)


def validate_schedule(tree: _TreeLike, schedule: Sequence[int]) -> Schedule:
    """Check that ``schedule`` is a permutation of the tree's leaf indices.

    Returns the schedule as a canonical tuple; raises
    :class:`~repro.errors.InvalidScheduleError` otherwise.
    """
    size = _tree_size(tree)
    sched = tuple(int(idx) for idx in schedule)
    if len(sched) != size:
        raise InvalidScheduleError(
            f"schedule has {len(sched)} entries but the tree has {size} leaves"
        )
    if sorted(sched) != list(range(size)):
        raise InvalidScheduleError(f"schedule {sched!r} is not a permutation of 0..{size - 1}")
    return sched


def identity_schedule(tree: _TreeLike) -> Schedule:
    """The declaration-order schedule ``(0, 1, ..., m-1)``."""
    return tuple(range(_tree_size(tree)))


def random_schedule(tree: _TreeLike, rng: np.random.Generator) -> Schedule:
    """A uniformly random permutation of the leaves."""
    return tuple(int(i) for i in rng.permutation(_tree_size(tree)))


def is_depth_first(tree: DnfTree, schedule: Sequence[int]) -> bool:
    """True iff the schedule evaluates AND nodes one by one (Theorem 2 shape).

    Formally: the sequence of AND indices visited by the schedule has each
    AND's leaves in one contiguous block.
    """
    sched = validate_schedule(tree, schedule)
    seen_complete: set[int] = set()
    current = -1
    count = 0
    for g in sched:
        a = tree.and_of(g)
        if a == current:
            count += 1
        else:
            if a in seen_complete:
                return False
            if current >= 0 and count != len(tree.ands[current]):
                return False
            if current >= 0:
                seen_complete.add(current)
            current = a
            count = 1
    return count == len(tree.ands[current])


def depth_first_blocks(tree: DnfTree, schedule: Sequence[int]) -> list[tuple[int, list[int]]]:
    """Decompose a depth-first schedule into ``(and_index, [positions])`` blocks.

    Positions are within-AND leaf positions (the ``j`` of ``l_{i,j}``), in
    evaluation order. Raises if the schedule is not depth-first.
    """
    if not is_depth_first(tree, schedule):
        raise InvalidScheduleError("schedule is not depth-first")
    blocks: list[tuple[int, list[int]]] = []
    for g in schedule:
        a, j = tree.ref(g)
        if blocks and blocks[-1][0] == a:
            blocks[-1][1].append(j)
        else:
            blocks.append((a, [j]))
    return blocks


def make_depth_first(
    tree: DnfTree,
    and_order: Sequence[int],
    leaf_orders: Sequence[Sequence[int]] | None = None,
) -> Schedule:
    """Build a depth-first schedule from an AND order and per-AND leaf orders.

    Parameters
    ----------
    and_order:
        Permutation of ``range(tree.n_ands)`` giving the block order.
    leaf_orders:
        ``leaf_orders[i]`` is the within-AND evaluation order (a permutation
        of positions ``range(m_i)``) for AND node ``i`` — indexed by AND
        *node* id, not by block position. ``None`` means declaration order
        everywhere.
    """
    if sorted(and_order) != list(range(tree.n_ands)):
        raise InvalidScheduleError(
            f"and_order {list(and_order)!r} is not a permutation of the AND nodes"
        )
    schedule: list[int] = []
    for a in and_order:
        size = len(tree.ands[a])
        order = list(range(size)) if leaf_orders is None else list(leaf_orders[a])
        if sorted(order) != list(range(size)):
            raise InvalidScheduleError(
                f"leaf order {order!r} is not a permutation of AND {a}'s positions"
            )
        schedule.extend(tree.gindex(a, j) for j in order)
    return tuple(schedule)


def as_depth_first_orders(
    tree: DnfTree, schedule: Sequence[int]
) -> tuple[list[int], list[list[int]]]:
    """Inverse of :func:`make_depth_first`: recover (and_order, leaf_orders)."""
    blocks = depth_first_blocks(tree, schedule)
    and_order = [a for a, _ in blocks]
    leaf_orders: list[list[int]] = [[] for _ in range(tree.n_ands)]
    for a, positions in blocks:
        leaf_orders[a] = list(positions)
    return and_order, leaf_orders
