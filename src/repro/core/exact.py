"""Exact reference evaluator for arbitrary trees and schedules.

This is the *ground truth* the analytic evaluators are validated against: a
memoized recursion over execution states that computes the exact expected
cost of any linear schedule on any AND-OR tree, including the shared-stream
cache. It is exponential in the worst case (the state space keys on the
tree's resolution state and the cache content) and is therefore only used on
small instances — tests, counter-example searches, and cross-validation.

Semantics (matching the paper and :mod:`repro.engine`):

* leaves are processed in schedule order;
* a leaf whose ancestors include a resolved node is skipped at zero cost;
* evaluating a leaf first fetches its missing items (deterministic cost given
  the cache), then branches TRUE with probability ``p`` / FALSE with ``1-p``;
* the recursion stops when the root resolves or the schedule is exhausted.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.resolution import TreeIndex
from repro.core.schedule import validate_schedule
from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.errors import BudgetExceededError

__all__ = ["exact_schedule_cost"]


def exact_schedule_cost(
    tree: Union[QueryTree, AndTree, DnfTree],
    schedule: Sequence[int],
    *,
    max_states: int = 2_000_000,
) -> float:
    """Exact expected cost of ``schedule`` on ``tree`` (exponential time).

    Parameters
    ----------
    max_states:
        Guard on the number of memoized states; exceeded ->
        :class:`~repro.errors.BudgetExceededError`.
    """
    schedule = validate_schedule(tree, schedule)
    index = TreeIndex(tree)
    leaves = index.tree.leaves
    costs = index.tree.costs

    stream_slots: dict[str, int] = {}
    for leaf in leaves:
        stream_slots.setdefault(leaf.stream, len(stream_slots))
    leaf_slot = [stream_slots[leaf.stream] for leaf in leaves]
    leaf_cost = [costs[leaf.stream] for leaf in leaves]

    memo: dict[tuple[int, bytes, tuple[int, ...]], float] = {}

    def rec(idx: int, state, mem: tuple[int, ...]) -> float:
        # Advance over resolved/skipped leaves; stops are deterministic here.
        while idx < len(schedule):
            if state.root_value is not None:
                return 0.0
            if not state.is_skipped(schedule[idx]):
                break
            idx += 1
        else:
            return 0.0

        key = (idx, state.signature(), mem)
        hit = memo.get(key)
        if hit is not None:
            return hit
        if len(memo) >= max_states:
            raise BudgetExceededError(f"exact evaluator exceeded {max_states} states")

        g = schedule[idx]
        leaf = leaves[g]
        slot = leaf_slot[g]
        have = mem[slot]
        if leaf.items > have:
            fetch = (leaf.items - have) * leaf_cost[g]
            mem2 = mem[:slot] + (leaf.items,) + mem[slot + 1 :]
        else:
            fetch = 0.0
            mem2 = mem

        total = fetch
        if leaf.prob > 0.0:
            state_true = state.copy()
            state_true.set_leaf(g, True)
            total += leaf.prob * rec(idx + 1, state_true, mem2)
        if leaf.prob < 1.0:
            state_false = state.copy()
            state_false.set_leaf(g, False)
            total += (1.0 - leaf.prob) * rec(idx + 1, state_false, mem2)

        memo[key] = total
        return total

    initial_mem = tuple([0] * len(stream_slots))
    return rec(0, index.new_state(), initial_mem)
