"""Runtime-scaling benchmarks (paper §IV-D closing claim).

The paper: the best heuristic "runs in less than 5 seconds on a 1.86 GHz
core when processing a tree with 10 AND nodes with each 20 leaves". This
module reproduces that claim point and benchmarks the scaling of every
algorithmic component (Algorithm 1, Proposition 2 evaluation, the dynamic
heuristic, the exhaustive search at small sizes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.andtree_optimal import algorithm1_order
from repro.core.cost import dnf_schedule_cost
from repro.core.dnf_optimal import optimal_depth_first
from repro.core.heuristics import get_scheduler
from repro.experiments import ascii_table, paper_runtime_claim, runtime_grid
from repro.generators import random_and_tree, random_dnf_tree

from benchmarks.conftest import emit_report


@pytest.fixture(scope="module")
def runtime_report():
    points = runtime_grid(trees_per_cell=2, repeats=2)
    claim = paper_runtime_claim(repeats=2)
    rows = [
        (p.heuristic, p.n_ands, p.leaves_per_and, p.seconds * 1000.0) for p in points
    ]
    table = ascii_table(("heuristic", "N", "m", "ms per tree"), rows)
    report = (
        f"{table}\n\npaper claim point (N=10, m=20, best heuristic): "
        f"{claim.seconds * 1000:.2f} ms per tree (paper: < 5000 ms on 1.86 GHz)"
    )
    emit_report("runtime_scaling", report)
    return claim


class TestRuntime:
    def test_paper_claim_holds(self, benchmark, runtime_report):
        assert runtime_report.seconds < 5.0
        rng = np.random.default_rng(0)
        tree = random_dnf_tree(rng, 10, 20, 2.0)
        heuristic = get_scheduler("and-inc-c-over-p-dynamic")
        benchmark(heuristic.schedule, tree)

    @pytest.mark.parametrize("m", [10, 50, 100])
    def test_algorithm1_scaling(self, benchmark, m):
        """O(m^2) growth of Algorithm 1 over leaf count."""
        rng = np.random.default_rng(m)
        tree = random_and_tree(rng, m, 3.0)
        order = benchmark(algorithm1_order, tree)
        assert len(order) == m

    @pytest.mark.parametrize("n_ands", [2, 6, 10])
    def test_prop2_evaluation_scaling(self, benchmark, n_ands):
        """O(|L| D N) growth of the Proposition 2 evaluator."""
        rng = np.random.default_rng(n_ands)
        tree = random_dnf_tree(rng, n_ands, 10, 2.0)
        schedule = tuple(range(tree.size))
        benchmark(dnf_schedule_cost, tree, schedule)

    @pytest.mark.parametrize("n_ands", [2, 3])
    def test_exhaustive_search_scaling(self, benchmark, n_ands):
        """Exponential blowup of the exhaustive optimum (why Fig 5 is 'small')."""
        rng = np.random.default_rng(40 + n_ands)
        tree = random_dnf_tree(rng, n_ands, 3, 2.0)
        result = benchmark(optimal_depth_first, tree)
        assert result.complete
