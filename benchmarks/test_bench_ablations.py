"""Ablation benchmarks for the design decisions DESIGN.md calls out.

1. Proposition 1 inside stream-ordered (increasing vs decreasing d);
2. stream-ordered R sort direction (rationale vs literal paper text);
3. dynamic vs static AND-ordering ("marginally better", quantified);
4. value of the shared-item cache itself;
5. warm-start pruning of the exhaustive search;
6. extensions: frequency of a non-linear advantage (§V) and how often the
   natural greedy is optimal on multi-stream AND-trees (§V open question).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dnf_optimal import optimal_depth_first
from repro.core.multistream import (
    MultiLeaf,
    MultiStreamAndTree,
    adaptive_greedy_multi,
    brute_force_multi,
    multi_and_tree_cost,
    smith_multi_order,
)
from repro.core.nonlinear import find_nonlinear_gap
from repro.experiments import (
    ascii_table,
    compare_dynamic_vs_static,
    compare_stream_ordered_d_direction,
    compare_stream_ordered_r_direction,
    shared_cache_savings,
)
from repro.generators import random_dnf_tree

from benchmarks.conftest import emit_report, full_scale


@pytest.fixture(scope="module")
def ablation_report():
    n = 500 if full_scale() else 150
    comparisons = {
        "stream-ordered: increasing-d (Prop. 1) vs decreasing-d (original [4])":
            compare_stream_ordered_d_direction(n_instances=n, seed=0),
        "stream-ordered: decreasing-R (rationale) vs increasing-R (literal text)":
            compare_stream_ordered_r_direction(n_instances=n, seed=1),
        "AND-ordered C/p: dynamic vs static":
            compare_dynamic_vs_static(n_instances=n, seed=2),
        "shared item cache vs no cache (same Algorithm 1 schedule)":
            shared_cache_savings(n_instances=n, seed=3),
    }
    blocks = []
    for title, comparison in comparisons.items():
        table = ascii_table(("metric", "%/ratio"), comparison.rows())
        blocks.append(f"{title}\n{table}")
    report = "\n\n".join(blocks)
    emit_report("ablations", report)
    return comparisons


class TestAblations:
    def test_prop1_direction(self, benchmark, ablation_report):
        comparison = ablation_report[
            "stream-ordered: increasing-d (Prop. 1) vs decreasing-d (original [4])"
        ]
        # paper: improved version wins in the vast majority, remainder ties
        assert comparison.b_wins == 0
        assert comparison.a_wins > comparison.n_instances * 0.3
        benchmark(
            compare_stream_ordered_d_direction, n_instances=20, seed=5
        )

    def test_r_direction(self, ablation_report):
        comparison = ablation_report[
            "stream-ordered: decreasing-R (rationale) vs increasing-R (literal text)"
        ]
        assert comparison.a_wins > comparison.b_wins

    def test_dynamic_vs_static(self, ablation_report):
        comparison = ablation_report["AND-ordered C/p: dynamic vs static"]
        assert comparison.a_wins >= comparison.b_wins
        assert 0.95 <= comparison.mean_ratio_b_over_a <= 1.25

    def test_cache_value(self, ablation_report):
        comparison = ablation_report[
            "shared item cache vs no cache (same Algorithm 1 schedule)"
        ]
        assert comparison.b_wins == 0
        assert comparison.mean_ratio_b_over_a > 1.05

    def test_warm_start_pruning(self, benchmark):
        """Warm-starting the exhaustive search must only shrink the tree."""
        rng = np.random.default_rng(4)
        trees = [random_dnf_tree(rng, 3, 3, 2.0) for _ in range(5)]
        warm_nodes = cold_nodes = 0
        for tree in trees:
            warm = optimal_depth_first(tree, warm_start=True)
            cold = optimal_depth_first(tree, warm_start=False)
            assert warm.cost == pytest.approx(cold.cost)
            warm_nodes += warm.nodes_explored
            cold_nodes += cold.nodes_explored
        assert warm_nodes <= cold_nodes
        benchmark(optimal_depth_first, trees[0])


class TestExtensionAblations:
    def test_nonlinear_gap_frequency(self, benchmark):
        """§V: gaps exist but are not ubiquitous; report the observed rate."""
        gaps = find_nonlinear_gap(n_trials=80, seed=0)
        rate = len(gaps) / 80
        emit_report(
            "nonlinear_gap_rate",
            f"linear/non-linear gap on {len(gaps)}/80 random shared instances "
            f"({rate * 100:.1f}%); max improvement "
            f"{max((g.improvement for g in gaps), default=0.0) * 100:.2f}%",
        )
        assert gaps
        benchmark(find_nonlinear_gap, n_trials=5, seed=1)

    def test_multistream_greedy_optimality_rate(self, benchmark):
        """§V open question: the natural greedy is usually but not always optimal."""
        optimal_hits = 0
        smith_hits = 0
        trials = 120
        for trial in range(trials):
            rng = np.random.default_rng(1000 + trial)
            m = int(rng.integers(2, 6))
            leaves = [
                MultiLeaf(
                    {f"S{k}": int(rng.integers(1, 3)) for k in range(1, int(rng.integers(2, 4)))},
                    float(rng.random()),
                )
                for _ in range(m)
            ]
            tree = MultiStreamAndTree(leaves, default_cost=1.0)
            _, best = brute_force_multi(tree)
            greedy = multi_and_tree_cost(tree, adaptive_greedy_multi(tree))
            smith = multi_and_tree_cost(tree, smith_multi_order(tree))
            if greedy <= best * (1 + 1e-9) + 1e-12:
                optimal_hits += 1
            if smith <= best * (1 + 1e-9) + 1e-12:
                smith_hits += 1
        emit_report(
            "multistream_greedy",
            f"adaptive greedy optimal on {optimal_hits}/{trials} "
            f"({optimal_hits / trials * 100:.1f}%) multi-stream AND-trees; "
            f"static Smith baseline on {smith_hits}/{trials} "
            f"({smith_hits / trials * 100:.1f}%)",
        )
        assert optimal_hits / trials > 0.5   # usually right...
        assert optimal_hits < trials         # ...but not a solved problem
        rng = np.random.default_rng(0)
        tree = MultiStreamAndTree(
            [MultiLeaf({"A": 2, "B": 1}, 0.5), MultiLeaf({"B": 2}, 0.4)],
            default_cost=1.0,
        )
        benchmark(adaptive_greedy_multi, tree)
