"""Elasticity benchmark: what do online split/drain/resize cost?

A static cluster born at the oracle width (the stream-overlap partition at
``n_clusters`` shards) is the best case — every component home from round
one, caches never move. The elastic run starts at the wrong width (2),
grows to the oracle width by online splits, drains a shard, and resettles —
all while serving. Because splits move whole stream-disjoint components and
migrations transplant cache state, the *expected acquisition cost* of the
elastic run must stay within 5% of the static oracle's (measured: equal to
the last bit — the acceptance bar leaves headroom for future policies that
trade a bounded cut for balance).

Emits ``results/elastic_overhead.txt`` and the machine-readable
``results/elastic_overhead.json`` perf record tracked across PRs.
"""

from __future__ import annotations

from conftest import emit_json, emit_report, full_scale

from repro.cluster import ClusterServer
from repro.generators import clustered_registry, overlap_clustered_population

MAX_OVERHEAD = 0.05  # elastic total cost may exceed the static oracle by <= 5%


def build_environment(n_queries: int, n_clusters: int, seed: int):
    registry = clustered_registry(n_clusters, 4, seed=seed)
    population = overlap_clustered_population(
        n_queries, registry, n_clusters, 4, seed=seed + 1
    )
    return registry, population


class TestElasticOverhead:
    def test_split_drain_cost_overhead_within_bar(self):
        if full_scale():
            n_queries, n_clusters, rounds = 1200, 12, 10
        else:
            n_queries, n_clusters, rounds = 240, 8, 5
        seed = 0

        # Static oracle: born at the overlap partition's width, never moves.
        registry, population = build_environment(n_queries, n_clusters, seed)
        static = ClusterServer(registry, n_shards=n_clusters, seed=seed)
        static.register_population(population)
        static_cost = 0.0
        static_seconds = 0.0
        for _ in range(4):
            report = static.run_batch(rounds)
            static_cost += report.total_cost
            static_seconds += report.wall_seconds

        # Elastic: born too narrow, reshaped online while serving.
        registry2, population2 = build_environment(n_queries, n_clusters, seed)
        elastic = ClusterServer(registry2, n_shards=2, seed=seed)
        elastic.register_population(population2)
        elastic_cost = 0.0
        elastic_seconds = 0.0
        timeline = []
        for action in (
            lambda: None,
            lambda: elastic.resize(n_clusters),
            lambda: elastic.drain_shard(
                min(
                    (s for s in elastic.shards if len(elastic.shards[s])),
                    key=lambda s: len(elastic.shards[s]),
                )
            ),
            lambda: elastic.resize(max(2, n_clusters // 2)),
        ):
            action()
            report = elastic.run_batch(rounds)
            elastic_cost += report.total_cost
            elastic_seconds += report.wall_seconds
            timeline.append((elastic.n_shards, report.total_cost))

        moves = sum(event.moves for event in elastic.elastic_log)
        overhead = elastic_cost / static_cost - 1.0

        lines = [
            f"{n_queries} queries in {n_clusters} stream clusters, "
            f"4 batches x {rounds} rounds",
            "",
            f"static oracle partition ({n_clusters} shards): "
            f"cost {static_cost:.6g} in {static_seconds:.3f}s",
            f"elastic (2 -> {n_clusters} -> drain -> {max(2, n_clusters // 2)}): "
            f"cost {elastic_cost:.6g} in {elastic_seconds:.3f}s, "
            f"{elastic.splits} splits / {elastic.drains} drains, "
            f"{moves} query moves",
            f"width/cost timeline: {timeline}",
            "",
            f"cost overhead of online reshaping: {overhead:+.4%} "
            f"(acceptance: <= {MAX_OVERHEAD:.0%})",
        ]
        emit_report("elastic_overhead", "\n".join(lines))
        emit_json(
            "elastic_overhead",
            {
                "n_queries": n_queries,
                "n_clusters": n_clusters,
                "rounds_per_batch": rounds,
                "static_cost": static_cost,
                "elastic_cost": elastic_cost,
                "overhead": overhead,
                "max_overhead": MAX_OVERHEAD,
                "splits": elastic.splits,
                "drains": elastic.drains,
                "moves": moves,
                "static_seconds": static_seconds,
                "elastic_seconds": elastic_seconds,
            },
        )

        assert overhead <= MAX_OVERHEAD, (
            f"elastic reshaping cost {overhead:+.2%} over the static oracle "
            f"(required <= {MAX_OVERHEAD:.0%})"
        )
        # Clean splits + cache transplant: today the overhead is exactly zero.
        assert abs(elastic_cost - static_cost) <= 1e-9 * static_cost
