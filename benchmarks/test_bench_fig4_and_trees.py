"""Figure 4 regeneration: read-once greedy vs Algorithm 1 on shared AND-trees.

Paper's in-text numbers (157,000 instances):

* max read-once/optimal ratio 1.86;
* >10% worse on 19.54% of instances;
* >1% worse on 60.20%;
* exactly equal on 11.29%.

The default bench runs 100 trees per (m, rho) cell (15,700 instances) —
enough to land within a few points of every statistic; ``REPRO_BENCH_FULL=1``
restores the paper's 1,000 per cell. Also times the two scheduling
algorithms themselves (Algorithm 1 is O(m^2) vs Smith's O(m log m)).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.andtree_optimal import algorithm1_order, read_once_order
from repro.experiments import ascii_table, run_fig4
from repro.experiments.report import ascii_cost_scatter
from repro.generators import random_and_tree

from benchmarks.conftest import bench_workers, emit_report, full_scale


@pytest.fixture(scope="module")
def fig4_result():
    trees_per_config = 1000 if full_scale() else 100
    return run_fig4(trees_per_config=trees_per_config, seed=0, workers=bench_workers())


@pytest.fixture(scope="module")
def fig4_report(fig4_result):
    summary = fig4_result.summary()
    paper = {
        "instances": 157000,
        "max ratio read-once/optimal": 1.86,
        "% instances >10% worse": 19.54,
        "% instances >1% worse": 60.20,
        "% instances equal": 11.29,
        "mean ratio": float("nan"),
    }
    rows = [
        (label, value, paper.get(label, float("nan")))
        for label, value in summary.rows()
    ]
    table = ascii_table(("statistic", "measured", "paper"), rows)
    by_rho = fig4_result.by_rho()
    rho_rows = [
        (f"rho={rho:g}", s.mean_ratio, s.max_ratio, s.pct_equal)
        for rho, s in sorted(by_rho.items())
    ]
    rho_table = ascii_table(("sharing ratio", "mean ratio", "max ratio", "% equal"), rho_rows)
    optimal, read_once = fig4_result.sorted_series()
    scatter = ascii_cost_scatter(optimal, read_once)
    report = (
        f"{table}\n\nper-sharing-ratio breakdown:\n{rho_table}\n\n"
        f"the figure (paper Fig. 4 rendering):\n{scatter}"
    )
    emit_report("fig4_and_trees", report)
    return summary


class TestFigure4:
    def test_sweep_shape_and_statistics(self, benchmark, fig4_result, fig4_report):
        """Headline shape: Algorithm 1 dominates; suboptimality is widespread."""
        summary = fig4_report
        ratios = fig4_result.ratios()
        assert np.all(ratios >= 1.0 - 1e-9)
        # Shape bands around the paper's numbers (sampling tolerance).
        assert 1.5 <= summary.max_ratio <= 2.6
        assert 12.0 <= summary.pct_over_10pct <= 30.0
        assert 45.0 <= summary.pct_over_1pct <= 75.0
        assert 5.0 <= summary.pct_equal <= 25.0
        # Benchmark the per-instance work of the sweep's hot loop.
        rng = np.random.default_rng(1)
        trees = [random_and_tree(rng, 12, 3.0) for _ in range(20)]

        def schedule_batch():
            return [algorithm1_order(tree) for tree in trees]

        orders = benchmark(schedule_batch)
        assert len(orders) == 20

    def test_smith_baseline_speed(self, benchmark):
        rng = np.random.default_rng(2)
        trees = [random_and_tree(rng, 12, 3.0) for _ in range(20)]
        orders = benchmark(lambda: [read_once_order(tree) for tree in trees])
        assert len(orders) == 20

    def test_algorithm1_scaling_m20(self, benchmark):
        """The paper's largest Figure 4 trees (m = 20)."""
        rng = np.random.default_rng(3)
        trees = [random_and_tree(rng, 20, 5.0) for _ in range(10)]
        orders = benchmark(lambda: [algorithm1_order(tree) for tree in trees])
        assert all(len(order) == 20 for order in orders)
