"""Win-rate breakdown bench: where does the best heuristic's edge live?

Slices the Figure 6 comparison by per-AND leaf count and sharing ratio.
The paper's aggregate "best in 94.5% of cases" depends on the grid mix:
small / low-sharing cells are tie-heavy, large shared cells are where the
dynamic C/p ordering pulls away. The emitted matrix makes that visible.
"""

from __future__ import annotations

import pytest

from repro.experiments import breakdown_matrix, win_rate_breakdown

from benchmarks.conftest import emit_report, full_scale


@pytest.fixture(scope="module")
def cells():
    n = 60 if full_scale() else 25
    return win_rate_breakdown(
        leaves_per_and_values=(2, 5, 10, 15),
        rhos=(1.0, 2.0, 5.0, 10.0),
        instances_per_cell=n,
        n_ands=6,
        seed=0,
    )


@pytest.fixture(scope="module")
def breakdown_report(cells):
    emit_report("win_rate_breakdown", breakdown_matrix(cells))
    return cells


class TestBreakdownBench:
    def test_reference_strong_at_moderate_sharing(self, benchmark, breakdown_report):
        cells = breakdown_report
        # non-trivial win rate in every cell...
        for cell in cells:
            assert cell.win_rate >= 0.1, (cell.leaves_per_and, cell.rho)
        # ...dominant at the paper's moderate sharing ratios, and measurably
        # eroded at extreme sharing (a finding of this reproduction: with
        # rho = 10 the cache flattens every heuristic's cost, so near-ties
        # and upsets multiply)
        moderate = [c for c in cells if c.rho <= 2.0]
        extreme = [c for c in cells if c.rho >= 10.0]
        mean_moderate = sum(c.win_rate for c in moderate) / len(moderate)
        mean_extreme = sum(c.win_rate for c in extreme) / len(extreme)
        assert mean_moderate >= 0.6
        assert mean_extreme <= mean_moderate
        benchmark(
            win_rate_breakdown,
            leaves_per_and_values=(2,),
            rhos=(2.0,),
            instances_per_cell=5,
            n_ands=3,
            seed=1,
        )
