"""Shared benchmark configuration.

Default scales keep the whole suite laptop-friendly (a few minutes);
``REPRO_BENCH_FULL=1`` switches every figure to the paper's instance counts
(157,000 AND-trees, the full 216/324-cell DNF grids — expect hours for the
exhaustive Figure 5 optimum search).

Each figure module writes its regenerated "figure" (summary table + ASCII
profile plot) to ``benchmarks/results/<name>.txt`` and echoes it to stdout.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


def bench_workers() -> int | None:
    value = os.environ.get("REPRO_WORKERS")
    return int(value) if value else None


def emit_report(name: str, text: str) -> None:
    """Persist and echo a regenerated figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n===== (saved to {path}) =====")


def emit_json(name: str, record: dict) -> Path:
    """Persist a machine-readable perf record (``results/<name>.json``).

    Every benchmark writes one of these so CI can upload the whole results
    directory as an artifact and the perf trajectory is comparable across
    commits. The envelope (benchmark name, timestamp, python, machine,
    full-scale flag) is uniform; ``record`` carries the benchmark's numbers.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "full_scale": full_scale(),
        **record,
    }
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"perf record saved to {path}")
    return path
