"""Process-mode cluster scaling: spawned workers vs the thread pool.

Thread-mode shards batch concurrently but share one GIL, so CPU-bound
serving saturates a single core no matter the cluster width. Process-mode
workers each own an interpreter; on a multi-core machine a 4-shard batch
should approach 4 cores of work. The benchmark serves the same
overlap-clustered population (identical per-name oracle streams) under
both executors and records wall time, speedup and cost parity.

Always emits ``results/process_cluster_scaling.json``. The >= 1.8x speedup
bar is asserted only when the machine exposes >= 4 usable cores — on a
single-core runner process workers cannot beat threads (they pay pipe and
spawn overhead for the same serialized CPU), but cost parity must hold
bit-for-bit everywhere.
"""

from __future__ import annotations

import os
import time

from conftest import emit_json, emit_report, full_scale

from repro.cluster import ClusterServer
from repro.generators import clustered_registry, overlap_clustered_population

N_SHARDS = 4
MIN_SPEEDUP = 1.8
WARM_BATCHES = 1


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _serve(executor: str, *, n_queries: int, rounds: int, batches: int):
    """One timed serving run; returns (wall_seconds, final BatchReport)."""
    registry = clustered_registry(N_SHARDS, 4, seed=0)
    population = overlap_clustered_population(
        n_queries, registry, N_SHARDS, 4, cross_cluster_prob=0.0, seed=1
    )
    cluster = ClusterServer(registry, n_shards=N_SHARDS, executor=executor, seed=0)
    try:
        cluster.register_population(population)
        # Warm-up batches amortize plan-cache fills and (process mode)
        # worker spawn before the timed section.
        for _ in range(WARM_BATCHES):
            cluster.run_batch(rounds)
        start = time.perf_counter()
        reports = [cluster.run_batch(rounds) for _ in range(batches)]
        wall = time.perf_counter() - start
    finally:
        cluster.close()
    merged_cost = {}
    for report in reports:
        for name, cost in report.per_query_cost.items():
            merged_cost[name] = merged_cost.get(name, 0.0) + cost
    return wall, merged_cost


class TestProcessClusterScaling:
    def test_process_executor_speedup_and_parity(self):
        if full_scale():
            scale = dict(n_queries=400, rounds=30, batches=4)
        else:
            scale = dict(n_queries=120, rounds=12, batches=3)
        cores = usable_cores()

        thread_wall, thread_cost = _serve("thread", **scale)
        process_wall, process_cost = _serve("process", **scale)
        speedup = thread_wall / process_wall if process_wall > 0 else float("inf")
        gated = cores >= N_SHARDS

        lines = [
            f"{scale['n_queries']} queries on {N_SHARDS} shards, "
            f"{scale['batches']} batches x {scale['rounds']} rounds, "
            f"{cores} usable cores",
            "",
            f"thread executor:  {thread_wall:.4f}s",
            f"process executor: {process_wall:.4f}s",
            f"speedup: {speedup:.2f}x "
            + (
                f"(acceptance: >= {MIN_SPEEDUP}x on >= {N_SHARDS} cores)"
                if gated
                else f"(informational: only {cores} core(s), bar not applied)"
            ),
        ]
        emit_report("process_cluster_scaling", "\n".join(lines))
        emit_json(
            "process_cluster_scaling",
            {
                "n_queries": scale["n_queries"],
                "n_shards": N_SHARDS,
                "rounds_per_batch": scale["rounds"],
                "batches": scale["batches"],
                "usable_cores": cores,
                "thread_wall_seconds": thread_wall,
                "process_wall_seconds": process_wall,
                "speedup": speedup,
                "speedup_bar": MIN_SPEEDUP,
                "speedup_bar_applied": gated,
            },
        )

        # Cost parity is executor-independent and holds on any machine.
        assert process_cost == thread_cost, (
            "per-query costs diverged between thread and process executors"
        )
        if gated:
            assert speedup >= MIN_SPEEDUP, (
                f"process executor only {speedup:.2f}x over threads on "
                f"{cores} cores (required >= {MIN_SPEEDUP}x)"
            )
