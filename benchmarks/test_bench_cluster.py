"""Cluster serving benchmark: K overlap shards vs the unsharded server.

On an overlap-clustered population the unsharded server pays one global
cost-effectiveness merge over the whole population — O(probes x queries),
mostly comparing queries that can never share a window — while K shards pay
K local merges over populations 1/K the size. The benchmark serves the same
population (identical per-name oracle streams) three ways and asserts:

* K-shard concurrent serving reaches >= 1.5x the single-shard serial
  throughput (the sharding acceptance bar; measured ~2-4x on one core, more
  with real cores since shards batch on independent threads);
* the stream-overlap partition's total cost equals the unsharded server's
  exactly (sharding where overlap lives loses nothing), while the random
  partition of the same width pays measurably more (sharing cut).

Emits ``results/cluster_scaling.txt`` and the machine-readable
``results/cluster_scaling.json`` perf record tracked across PRs.
``REPRO_BENCH_FULL=1`` scales the population an order of magnitude up.
"""

from __future__ import annotations

from conftest import emit_json, emit_report, full_scale

from repro.experiments import ascii_table
from repro.experiments.cluster import run_cluster_compare, verify_cluster_parity

MIN_SPEEDUP = 1.5


class TestClusterScaling:
    def test_sharded_throughput_and_cost_parity(self):
        if full_scale():
            kwargs = dict(n_queries=2000, n_clusters=16, rounds=10)
        else:
            kwargs = dict(n_queries=300, n_clusters=8, rounds=8)
        report = run_cluster_compare(streams_per_cluster=4, seed=0, **kwargs)
        single = report.result("single")
        sharded = report.result("overlap-sharded")
        random = report.result("random-sharded")
        speedup = report.speedup("overlap-sharded")

        lines = [
            f"{report.n_queries} queries in {report.n_clusters} stream clusters, "
            f"{report.rounds} rounds/batch",
            "",
            ascii_table(report.summary_headers(), report.summary_rows()),
            "",
            f"overlap-sharded vs single-shard throughput: {speedup:.2f}x "
            f"(acceptance: >= {MIN_SPEEDUP}x)",
            f"random-sharded vs single-shard throughput:  "
            f"{report.speedup('random-sharded'):.2f}x",
            f"total cost: single {single.total_cost:.6g}, overlap-sharded "
            f"{sharded.total_cost:.6g} (equal), random-sharded "
            f"{random.total_cost:.6g} ({random.total_cost / single.total_cost:.2f}x)",
        ]
        emit_report("cluster_scaling", "\n".join(lines))
        emit_json("cluster_scaling", report.to_record())

        # Throughput: the sharding acceptance bar.
        assert speedup >= MIN_SPEEDUP, (
            f"overlap-sharded only {speedup:.2f}x over single-shard "
            f"(required >= {MIN_SPEEDUP}x)"
        )
        # Cost: overlap sharding loses nothing...
        assert abs(sharded.total_cost - single.total_cost) <= 1e-6 * single.total_cost
        # ...while overlap-blind sharding of the same width pays for the cut.
        assert random.total_cost > single.total_cost * 1.05
        assert sharded.partition.kept_fraction == 1.0
        assert random.partition.kept_fraction < 1.0

    def test_differential_parity_sharded_vs_unsharded(self):
        """Per-query costs/outcomes: K shards == one QueryServer, per seed."""
        deltas = verify_cluster_parity(
            n_queries=120 if full_scale() else 40,
            n_clusters=4,
            rounds=10,
            seed=0,
        )
        assert max(deltas.values()) == 0.0
