"""SLO capacity curve: churn workloads at increasing registration rates.

Drives a fixed-size query population through repeated ``run_batch`` calls
while churning it between batches (deregister the oldest ``rate`` queries,
register ``rate`` fresh ones), with the full telemetry layer attached and
writing its JSONL sink into ``benchmarks/results/`` so the CI artifact
carries the raw traces alongside the summary.

The emitted perf record is a capacity curve: one point per registration
rate with the sustained throughput (query-evaluations per second, queries
per round) against the tail round latency (p50/p99 of
``repro_round_seconds``) and tail round cost (p99 of ``repro_round_cost``)
pulled from the telemetry registry — i.e. the numbers an operator would
read off the ``repro metrics`` dashboard to pick a sustainable load.
"""

from __future__ import annotations

import time

from conftest import RESULTS_DIR, emit_json, emit_report, full_scale

from repro.engine import BernoulliOracle
from repro.experiments import ascii_table
from repro.obs import (
    Telemetry,
    attribute,
    build_forest,
    latest_snapshot,
    read_jsonl,
)
from repro.service import QueryServer, synthetic_population, synthetic_registry

BATCHES = 6
ROUNDS_PER_BATCH = 8


def churn_rates() -> list[int]:
    return [0, 2, 8, 32] if full_scale() else [0, 2, 8]


def base_queries() -> int:
    return 128 if full_scale() else 32


def run_churn_workload(rate: int, sink_path) -> dict:
    """One capacity-curve point: churn ``rate`` queries between batches."""
    n_base = base_queries()
    registry = synthetic_registry(8, seed=11)
    # One pool for the base population plus every churn replacement, so
    # names never collide and each admitted tree is genuinely new.
    pool = synthetic_population(n_base + rate * BATCHES, registry, seed=13 + rate)
    telemetry = Telemetry(sink=sink_path)
    server = QueryServer(registry, BernoulliOracle(seed=17), telemetry=telemetry)
    for name, tree in pool[:n_base]:
        server.register(name, tree)
    next_admit = n_base

    resident: list[str] = [name for name, _ in pool[:n_base]]
    wall_start = time.perf_counter()
    for _ in range(BATCHES):
        server.run_batch(ROUNDS_PER_BATCH, engine="vectorized")
        for _ in range(rate):
            server.deregister(resident.pop(0))
            name, tree = pool[next_admit]
            server.register(name, tree)
            resident.append(name)
            next_admit += 1
    wall_seconds = time.perf_counter() - wall_start
    telemetry.write_snapshot()
    telemetry.close()

    total_rounds = BATCHES * ROUNDS_PER_BATCH
    reg = telemetry.registry
    round_seconds = reg.get_histogram("repro_round_seconds")
    round_cost = reg.get_histogram("repro_round_cost")
    assert round_seconds is not None and round_cost is not None
    assert round_seconds.count == total_rounds
    assert reg.value("repro_rounds_total") == total_rounds

    # The sink must replay: the last record is a snapshot with metrics.
    records = read_jsonl(sink_path)
    snapshot = latest_snapshot(records)
    assert snapshot is not None and "metrics" in snapshot

    # Acceptance gate for the attribution pipeline: on this workload the
    # batch spans' phase accounting must explain >= 95% of measured batch
    # wall time — i.e. ``repro trace --format critical-path`` over this
    # sink attributes the batch almost entirely to named buckets.
    forest = build_forest(records)
    batch_roots = forest.batch_roots()
    assert len(batch_roots) == BATCHES
    assert forest.orphans == []
    wall = sum(root.dur for root in batch_roots)
    busy = sum(attribute(root).busy_seconds for root in batch_roots)
    attribution_coverage = busy / wall
    assert attribution_coverage >= 0.95, (
        f"phase attribution explains only {attribution_coverage:.1%} of "
        f"batch wall time at churn rate {rate} (need >= 95%)"
    )

    evals = n_base * total_rounds
    point = {
        "rate": rate,
        "queries_per_round": n_base,
        "batches": BATCHES,
        "rounds_per_batch": ROUNDS_PER_BATCH,
        "total_rounds": total_rounds,
        "wall_seconds": wall_seconds,
        "evals_per_sec": evals / wall_seconds,
        "p50_round_seconds": round_seconds.percentile(50.0),
        "p99_round_seconds": round_seconds.percentile(99.0),
        "p99_round_cost": round_cost.percentile(99.0),
        "mean_round_cost": round_cost.mean,
        "churned_queries": rate * BATCHES,
        "telemetry_records": telemetry.tracer.emitted,
        "telemetry_sink": sink_path.name,
        "attribution_coverage": attribution_coverage,
    }
    assert point["p99_round_seconds"] >= point["p50_round_seconds"] > 0.0
    return point


class TestSloCapacity:
    def test_capacity_curve(self):
        RESULTS_DIR.mkdir(exist_ok=True)
        curve = []
        for rate in churn_rates():
            sink = RESULTS_DIR / f"slo_telemetry_rate{rate:02d}.jsonl"
            curve.append(run_churn_workload(rate, sink))
        # More churn must never *increase* the resident population.
        assert len({point["queries_per_round"] for point in curve}) == 1
        rows = [
            (
                point["rate"],
                point["queries_per_round"],
                f"{point['evals_per_sec']:,.0f}",
                f"{point['p50_round_seconds'] * 1e6:.1f}",
                f"{point['p99_round_seconds'] * 1e6:.1f}",
                f"{point['p99_round_cost']:.5g}",
                point["telemetry_records"],
                f"{point['attribution_coverage']:.1%}",
            )
            for point in curve
        ]
        table = ascii_table(
            (
                "churn/batch",
                "queries/round",
                "evals/s",
                "p50 round us",
                "p99 round us",
                "p99 round cost",
                "trace records",
                "attributed",
            ),
            rows,
        )
        emit_report("slo_capacity", table)
        emit_json("slo_capacity", {"curve": curve})
