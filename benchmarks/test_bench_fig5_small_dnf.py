"""Figure 5 regeneration: heuristics vs exhaustive optimum on small DNF trees.

Paper findings (21,600 instances):

* AND-ordered heuristics dominate (except decreasing-p);
* "AND-ordered, inc. C/p, dynamic" is best (83.8% of cases), inc. C second;
* stream-ordered [4] is worse than the best leaf-ordered heuristic;
* leaf-ordered random is worst.

The default grid trims the paper's to exhaustive-feasible sizes (see
``repro.experiments.fig5.default_small_configs``); ``REPRO_BENCH_FULL=1``
runs the full 216-cell grid at 100 instances per cell (hours: the optimum
search is exponential). Prints/saves the performance-profile plot and the
summary table, and benchmarks the exhaustive search plus the winning
heuristic on one representative instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dnf_optimal import optimal_depth_first
from repro.core.heuristics import get_scheduler
from repro.experiments import REFERENCE_HEURISTIC, ascii_profile_plot, ascii_table, run_fig5
from repro.experiments.fig5 import default_small_configs
from repro.generators import fig5_configs, random_dnf_tree

from benchmarks.conftest import bench_workers, emit_report, full_scale


@pytest.fixture(scope="module")
def fig5_result():
    if full_scale():
        return run_fig5(
            instances_per_config=100,
            configs=list(fig5_configs()),
            seed=0,
            workers=bench_workers(),
        )
    return run_fig5(instances_per_config=15, seed=0, workers=bench_workers())


@pytest.fixture(scope="module")
def fig5_report(fig5_result):
    table = ascii_table(fig5_result.summary_headers(), fig5_result.summary_rows())
    plot = ascii_profile_plot(fig5_result.profiles(), width=64, height=16)
    wins = fig5_result.best_fractions()
    best_line = (
        f"best heuristic: {max(wins, key=wins.get)} "
        f"(best-or-tied on {max(wins.values()) * 100:.1f}% of instances; paper: "
        f"and-inc-c-over-p-dynamic on 83.8%)"
    )
    report = (
        f"{fig5_result.n_instances} instances "
        f"({fig5_result.skipped_budget} skipped on budget)\n\n"
        f"{table}\n\n{best_line}\n\nratio-to-optimal profiles "
        f"(paper Figure 5; lower curve = better):\n{plot}"
    )
    emit_report("fig5_small_dnf", report)
    return fig5_result


class TestFigure5:
    def test_profiles_shape(self, benchmark, fig5_report):
        result = fig5_report
        profiles = result.profiles()
        # (1) no heuristic beats the exhaustive optimum
        for name in result.heuristic_costs:
            assert np.all(result.ratios(name) >= 1.0 - 1e-9), name
        # (2) the dynamic C/p AND-ordering is the best (or statistically tied
        #     with its static sibling at reduced scale)
        wins = result.best_fractions()
        ranked = sorted(wins, key=wins.get, reverse=True)
        assert ranked[0] in ("and-inc-c-over-p-dynamic", "and-inc-c-over-p-static")
        assert wins[REFERENCE_HEURISTIC] >= 0.5
        # (3) every AND-ordered C-based heuristic beats every leaf-ordered one
        #     at the within-10% mark
        for and_name in ("and-inc-c-over-p-dynamic", "and-inc-c-dynamic"):
            for leaf_name in ("leaf-random", "leaf-dec-q", "leaf-inc-c-over-q"):
                assert (
                    profiles[and_name].fraction_within(1.1)
                    > profiles[leaf_name].fraction_within(1.1)
                ), (and_name, leaf_name)
        # (4) random is the worst leaf-ordered heuristic at the 2x mark,
        #     modulo dec-q which the paper also shows near the bottom
        assert profiles["leaf-random"].fraction_within(2.0) <= max(
            profiles["leaf-inc-c"].fraction_within(2.0),
            profiles["leaf-inc-c-over-q"].fraction_within(2.0),
        )
        # (5) stream-ordered is not better than the best leaf-ordered
        best_leaf = max(
            profiles[name].fraction_within(1.1)
            for name in ("leaf-inc-c", "leaf-inc-c-over-q", "leaf-dec-q")
        )
        assert profiles["stream-ordered"].fraction_within(1.1) <= best_leaf + 0.10
        # benchmark: the winning heuristic on a mid-size instance
        rng = np.random.default_rng(5)
        tree = random_dnf_tree(rng, 4, 4, 2.0)
        heuristic = get_scheduler(REFERENCE_HEURISTIC)
        schedule = benchmark(heuristic.schedule, tree)
        assert len(schedule) == tree.size

    def test_exhaustive_search_one_instance(self, benchmark):
        rng = np.random.default_rng(6)
        tree = random_dnf_tree(rng, 3, 3, 2.0)
        result = benchmark(optimal_depth_first, tree)
        assert result.complete

    def test_dynamic_heuristic_tracks_optimum_closely(self, fig5_report):
        profile = fig5_report.profiles()[REFERENCE_HEURISTIC]
        # paper Figure 5: the winning curve hugs ratio 1 for most instances
        assert profile.fraction_within(1.25) >= 0.8
        assert profile.mean_ratio <= 1.2
