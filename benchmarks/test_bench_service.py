"""Serving-layer throughput: run_batch at 10/100/1000 registered queries.

Measures wall-clock throughput (query-evaluations per second) and sharing
effectiveness (probes free via the shared cache, items saved, plan-cache hit
rate) across the ablation grid {plan cache on/off} x {shared plan on/off}.
``REPRO_BENCH_FULL=1`` adds the 1000-query population to the default 10/100.
"""

from __future__ import annotations

import time

from conftest import emit_json, emit_report, full_scale

from repro.engine import BernoulliOracle
from repro.experiments import ascii_table
from repro.service import (
    QueryServer,
    SubtreeStore,
    synthetic_population,
    synthetic_registry,
)

ROUNDS = 20


def serve(n_queries: int, *, plan_cache: bool, shared_plan: bool):
    registry = synthetic_registry(8, seed=7)
    population = synthetic_population(n_queries, registry, seed=8)
    server = QueryServer(
        registry,
        BernoulliOracle(seed=9),
        plan_cache=256 if plan_cache else None,
        shared_plan=shared_plan,
    )
    admit_start = time.perf_counter()
    for name, tree in population:
        server.register(name, tree)
    admit_seconds = time.perf_counter() - admit_start
    run_start = time.perf_counter()
    report = server.run_batch(ROUNDS)
    run_seconds = time.perf_counter() - run_start
    return server, report, admit_seconds, run_seconds


class TestServiceThroughput:
    def test_run_batch_throughput(self):
        populations = [10, 100, 1000] if full_scale() else [10, 100]
        rows = []
        records = []
        for n_queries in populations:
            for plan_cache, shared_plan in (
                (True, True),
                (True, False),
                (False, True),
                (False, False),
            ):
                server, report, admit_s, run_s = serve(
                    n_queries, plan_cache=plan_cache, shared_plan=shared_plan
                )
                evals = n_queries * ROUNDS
                rows.append(
                    (
                        n_queries,
                        "on" if plan_cache else "off",
                        "on" if shared_plan else "off",
                        f"{admit_s * 1e3:.1f}",
                        f"{evals / run_s:,.0f}",
                        f"{report.total_cost:.5g}",
                        f"{report.free_probes}/{report.probes}",
                        f"{report.items_saved}",
                        f"{report.plan_cache_hit_rate:.0%}",
                    )
                )
                records.append(
                    {
                        "n_queries": n_queries,
                        "plan_cache": plan_cache,
                        "shared_plan": shared_plan,
                        "rounds": ROUNDS,
                        "admit_seconds": admit_s,
                        "run_seconds": run_s,
                        "evals_per_sec": evals / run_s,
                        "total_cost": report.total_cost,
                        "free_probes": report.free_probes,
                        "probes": report.probes,
                        "items_saved": report.items_saved,
                        "plan_cache_hit_rate": report.plan_cache_hit_rate,
                    }
                )
                assert report.rounds == ROUNDS
                # Sharing must be visible at every scale.
                assert report.items_saved > 0
        table = ascii_table(
            (
                "queries",
                "plan-cache",
                "shared-plan",
                "admit ms",
                "evals/s",
                "total cost",
                "free probes",
                "items saved",
                "hit rate",
            ),
            rows,
        )
        emit_report("service_throughput", table)
        emit_json("service_throughput", {"cells": records})


class TestAdmissionMemo:
    """Admission-throughput delta from the store's canonicalize memo.

    Registers a population where each template recurs verbatim (the common
    fleet pattern: one dashboard definition deployed under many names), so
    ``register`` with a substore canonicalizes each structure once and
    serves the rest from the memo. The bench records wall-clock admission
    time with the store off and on; correctness (identical costs) is
    asserted, the timing delta is reported, not asserted.
    """

    def test_memoized_admission_delta(self):
        n_templates, repeats = (50, 20) if full_scale() else (20, 10)
        registry = synthetic_registry(8, seed=7)
        templates = synthetic_population(n_templates, registry, seed=8)
        population = [
            (f"{name}-r{r}", tree)
            for name, tree in templates
            for r in range(repeats)
        ]
        rows, records, costs = [], [], {}
        for substore in (False, True):
            server = QueryServer(
                registry,
                BernoulliOracle(seed=9),
                plan_cache=256,
                substore=SubtreeStore() if substore else False,
            )
            admit_start = time.perf_counter()
            for name, tree in population:
                server.register(name, tree)
            admit_seconds = time.perf_counter() - admit_start
            costs[substore] = server.run_batch(5).total_cost
            store_stats = server.substore.stats() if server.substore else {}
            memo_hits = store_stats.get("memo_hits", 0)
            rows.append(
                (
                    "on" if substore else "off",
                    len(population),
                    f"{admit_seconds * 1e3:.1f}",
                    f"{len(population) / admit_seconds:,.0f}",
                    f"{memo_hits:.0f}",
                )
            )
            records.append(
                {
                    "substore": substore,
                    "n_registered": len(population),
                    "n_templates": n_templates,
                    "admit_seconds": admit_seconds,
                    "admissions_per_sec": len(population) / admit_seconds,
                    "memo_hits": memo_hits,
                    "memo_misses": store_stats.get("memo_misses", 0),
                }
            )
            if substore:
                # Every verbatim repeat after the first skips canonicalization.
                assert memo_hits >= len(population) - n_templates
        # The memo changes admission cost, never serving semantics.
        assert costs[True] == costs[False]
        table = ascii_table(
            ("substore", "registered", "admit ms", "admits/s", "memo hits"),
            rows,
        )
        emit_report("admission_memo", table)
        emit_json("admission_memo", {"cells": records})
