"""Serving-layer throughput: run_batch at 10/100/1000 registered queries.

Measures wall-clock throughput (query-evaluations per second) and sharing
effectiveness (probes free via the shared cache, items saved, plan-cache hit
rate) across the ablation grid {plan cache on/off} x {shared plan on/off}.
``REPRO_BENCH_FULL=1`` adds the 1000-query population to the default 10/100.
"""

from __future__ import annotations

import time

from conftest import emit_json, emit_report, full_scale

from repro.engine import BernoulliOracle
from repro.experiments import ascii_table
from repro.service import QueryServer, synthetic_population, synthetic_registry

ROUNDS = 20


def serve(n_queries: int, *, plan_cache: bool, shared_plan: bool):
    registry = synthetic_registry(8, seed=7)
    population = synthetic_population(n_queries, registry, seed=8)
    server = QueryServer(
        registry,
        BernoulliOracle(seed=9),
        plan_cache=256 if plan_cache else None,
        shared_plan=shared_plan,
    )
    admit_start = time.perf_counter()
    for name, tree in population:
        server.register(name, tree)
    admit_seconds = time.perf_counter() - admit_start
    run_start = time.perf_counter()
    report = server.run_batch(ROUNDS)
    run_seconds = time.perf_counter() - run_start
    return server, report, admit_seconds, run_seconds


class TestServiceThroughput:
    def test_run_batch_throughput(self):
        populations = [10, 100, 1000] if full_scale() else [10, 100]
        rows = []
        records = []
        for n_queries in populations:
            for plan_cache, shared_plan in (
                (True, True),
                (True, False),
                (False, True),
                (False, False),
            ):
                server, report, admit_s, run_s = serve(
                    n_queries, plan_cache=plan_cache, shared_plan=shared_plan
                )
                evals = n_queries * ROUNDS
                rows.append(
                    (
                        n_queries,
                        "on" if plan_cache else "off",
                        "on" if shared_plan else "off",
                        f"{admit_s * 1e3:.1f}",
                        f"{evals / run_s:,.0f}",
                        f"{report.total_cost:.5g}",
                        f"{report.free_probes}/{report.probes}",
                        f"{report.items_saved}",
                        f"{report.plan_cache_hit_rate:.0%}",
                    )
                )
                records.append(
                    {
                        "n_queries": n_queries,
                        "plan_cache": plan_cache,
                        "shared_plan": shared_plan,
                        "rounds": ROUNDS,
                        "admit_seconds": admit_s,
                        "run_seconds": run_s,
                        "evals_per_sec": evals / run_s,
                        "total_cost": report.total_cost,
                        "free_probes": report.free_probes,
                        "probes": report.probes,
                        "items_saved": report.items_saved,
                        "plan_cache_hit_rate": report.plan_cache_hit_rate,
                    }
                )
                assert report.rounds == ROUNDS
                # Sharing must be visible at every scale.
                assert report.items_saved > 0
        table = ascii_table(
            (
                "queries",
                "plan-cache",
                "shared-plan",
                "admit ms",
                "evals/s",
                "total cost",
                "free probes",
                "items saved",
                "hit rate",
            ),
            rows,
        )
        emit_report("service_throughput", table)
        emit_json("service_throughput", {"cells": records})
