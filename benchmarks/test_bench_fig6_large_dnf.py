"""Figure 6 regeneration: heuristics on large DNF trees vs the best heuristic.

Paper findings (32,400 instances): the small-instance observations carry
over; "AND-ordered, inc. C/p, dynamic" is the best heuristic on 94.5% of the
instances. Optima are intractable at this size, so ratios are to that
reference heuristic.

Default: a 300-instance trim of the grid; ``REPRO_BENCH_FULL=1`` runs the
full 324-cell grid at 100 instances per cell. Benchmarks the reference
heuristic at the paper's largest size (N=10, m=20).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.heuristics import get_scheduler
from repro.experiments import REFERENCE_HEURISTIC, ascii_profile_plot, ascii_table, run_fig6
from repro.generators import fig6_configs, random_dnf_tree

from benchmarks.conftest import bench_workers, emit_report, full_scale


@pytest.fixture(scope="module")
def fig6_result():
    if full_scale():
        return run_fig6(
            instances_per_config=100,
            configs=list(fig6_configs()),
            seed=0,
            workers=bench_workers(),
        )
    return run_fig6(instances_per_config=10, seed=0, workers=bench_workers())


@pytest.fixture(scope="module")
def fig6_report(fig6_result):
    table = ascii_table(fig6_result.summary_headers(), fig6_result.summary_rows())
    plot = ascii_profile_plot(fig6_result.profiles(), width=64, height=16)
    wins = fig6_result.best_fractions()
    best_line = (
        f"reference ({REFERENCE_HEURISTIC}) best-or-tied on "
        f"{wins[REFERENCE_HEURISTIC] * 100:.1f}% of instances (paper: 94.5%)"
    )
    report = (
        f"{fig6_result.n_instances} instances\n\n{table}\n\n{best_line}\n\n"
        f"ratio-to-reference profiles (paper Figure 6):\n{plot}"
    )
    emit_report("fig6_large_dnf", report)
    return fig6_result


class TestFigure6:
    def test_reference_dominates(self, benchmark, fig6_report):
        result = fig6_report
        wins = result.best_fractions()
        # The reference wins the large-instance comparison outright.
        assert wins[REFERENCE_HEURISTIC] == max(wins.values())
        assert wins[REFERENCE_HEURISTIC] >= 0.5
        profiles = result.profiles()
        # Ranking shape of the paper: AND-ordered C/p static is the runner-up
        # family; leaf-random is the worst curve.
        assert profiles["and-inc-c-over-p-static"].fraction_within(1.1) >= 0.9
        worst_at_2 = min(p.fraction_within(2.0) for p in profiles.values())
        assert profiles["leaf-random"].fraction_within(2.0) == worst_at_2
        # benchmark: the reference heuristic at the paper's largest size
        rng = np.random.default_rng(7)
        tree = random_dnf_tree(rng, 10, 20, 2.0)
        heuristic = get_scheduler(REFERENCE_HEURISTIC)
        schedule = benchmark(heuristic.schedule, tree)
        assert len(schedule) == 200

    def test_stream_ordered_speed_large(self, benchmark):
        rng = np.random.default_rng(8)
        tree = random_dnf_tree(rng, 10, 20, 2.0)
        heuristic = get_scheduler("stream-ordered")
        schedule = benchmark(heuristic.schedule, tree)
        assert len(schedule) == 200

    def test_cost_evaluation_speed_large(self, benchmark):
        """Proposition 2 evaluation at |L|=200, the sweep's inner loop."""
        from repro.core.cost import dnf_schedule_cost

        rng = np.random.default_rng(9)
        tree = random_dnf_tree(rng, 10, 20, 2.0)
        schedule = tuple(range(tree.size))
        cost = benchmark(dnf_schedule_cost, tree, schedule)
        assert cost > 0.0
