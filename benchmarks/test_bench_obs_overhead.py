"""Telemetry overhead guard: disabled telemetry must be free.

The observability layer is designed so a server constructed without
telemetry — or with ``Telemetry(enabled=False)`` — pays only a per-batch
attribute check, never per-round or per-probe work. This micro-benchmark
enforces that contract in CI: it times ``run_batch`` in three modes
(``none``: no telemetry object at all, the pre-telemetry baseline;
``disabled``: a telemetry object with recording off; ``enabled``: full
recording) with the repeats *interleaved* so thermal/scheduler drift hits
every mode equally, takes the min over repeats as the noise-resistant
estimate, and asserts the disabled mode is within 3% of the baseline.

The enabled-mode ratio is recorded (not asserted) so the perf trajectory
of the recording path itself stays visible across commits.

A second guard covers the causal-tracing path end to end: a two-shard
*process-mode* cluster with full tracing enabled (cross-process span
propagation, per-batch trace roll-up, registry deltas) must stay within
5% of the same cluster running bare. That run also emits a sample
Chrome/Perfetto trace (``results/obs_trace_sample_chrome.json``) so every
bench-perf CI run uploads a loadable trace artifact.
"""

from __future__ import annotations

import json
import statistics
import time

from conftest import RESULTS_DIR, emit_json, emit_report, full_scale

from repro.cluster import ClusterServer
from repro.engine import BernoulliOracle
from repro.experiments import ascii_table
from repro.generators import clustered_registry, overlap_clustered_population
from repro.obs import Telemetry, build_forest, read_jsonl, to_chrome_trace
from repro.service import QueryServer, synthetic_population, synthetic_registry

N_QUERIES = 100
ROUNDS = 60
OVERHEAD_BUDGET = 1.03
TRACING_BUDGET = 1.05
CLUSTER_ROUNDS = 60
CLUSTER_BATCHES = 2

MODES = ("none", "disabled", "enabled")


def repeats() -> int:
    return 9 if full_scale() else 5


def make_telemetry(mode: str) -> Telemetry | None:
    if mode == "none":
        return None
    # In-memory only: sink I/O is a real cost of *enabled* telemetry in
    # production, but this guard isolates the instrumentation overhead.
    return Telemetry(enabled=(mode == "enabled"))


def timed_batch(mode: str) -> float:
    registry = synthetic_registry(8, seed=21)
    population = synthetic_population(N_QUERIES, registry, seed=22)
    server = QueryServer(
        registry, BernoulliOracle(seed=23), telemetry=make_telemetry(mode)
    )
    for name, tree in population:
        server.register(name, tree)
    # Warm plan/window caches so the timed region is steady-state serving.
    server.run_batch(2, engine="vectorized")
    start = time.perf_counter()
    server.run_batch(ROUNDS, engine="vectorized")
    return time.perf_counter() - start


class TestTelemetryOverhead:
    def test_disabled_telemetry_within_budget(self):
        samples: dict[str, list[float]] = {mode: [] for mode in MODES}
        for _ in range(repeats()):
            for mode in MODES:
                samples[mode].append(timed_batch(mode))
        best = {mode: min(times) for mode, times in samples.items()}
        disabled_ratio = best["disabled"] / best["none"]
        enabled_ratio = best["enabled"] / best["none"]

        rows = [
            (
                mode,
                f"{best[mode] * 1e3:.2f}",
                f"{N_QUERIES * ROUNDS / best[mode]:,.0f}",
                f"{best[mode] / best['none']:.3f}x",
            )
            for mode in MODES
        ]
        table = ascii_table(("mode", "best ms", "evals/s", "vs baseline"), rows)
        emit_report("obs_overhead", table)
        emit_json(
            "obs_overhead",
            {
                "n_queries": N_QUERIES,
                "rounds": ROUNDS,
                "repeats": repeats(),
                "best_seconds": best,
                "samples_seconds": samples,
                "disabled_ratio": disabled_ratio,
                "enabled_ratio": enabled_ratio,
                "budget": OVERHEAD_BUDGET,
            },
        )
        assert disabled_ratio <= OVERHEAD_BUDGET, (
            f"disabled-telemetry run_batch is {disabled_ratio:.3f}x the"
            f" no-telemetry baseline (budget {OVERHEAD_BUDGET}x)"
        )


def make_cluster(telemetry: Telemetry | None) -> ClusterServer:
    # Heavy trees (deep DNF, many leaves) so each round does real probe
    # work — the gate measures tracing overhead against representative
    # serving, not against a degenerate workload where fixed per-round
    # recording dominates by construction.
    registry = clustered_registry(4, 6, seed=21)
    population = overlap_clustered_population(
        48,
        registry,
        4,
        6,
        cross_cluster_prob=0.0,
        seed=22,
        n_ands=(4, 6),
        leaves_per_and=(4, 7),
        d_range=(8, 20),
    )
    cluster = ClusterServer(
        registry, n_shards=2, executor="process", telemetry=telemetry
    )
    cluster.register_population(population)
    return cluster


def timed_batches(cluster: ClusterServer, n: int) -> list[float]:
    times = []
    for _ in range(n):
        start = time.perf_counter()
        for _ in range(CLUSTER_BATCHES):
            cluster.run_batch(CLUSTER_ROUNDS, engine="scalar")
        times.append(time.perf_counter() - start)
    return times


class TestTracingOverhead:
    def measure_block(self, n: int, samples: dict[str, list[float]]) -> float:
        # Both clusters stay alive for the whole block and their batches
        # interleave one-for-one, so each adjacent (bare, traced) pair runs
        # under the same machine state. Wall time itself drifts by ±20%
        # across a block, so comparing minima picks mismatched states; the
        # *paired* ratio is stable, and the median over pairs rejects the
        # odd descheduled outlier without the low bias a min-of-ratios
        # would have. Worker spawn cost is deliberately outside the timed
        # region — the gate is about steady-state serving.
        pairs = []
        with make_cluster(None) as bare, make_cluster(Telemetry()) as traced:
            bare.run_batch(4, engine="scalar")
            traced.run_batch(4, engine="scalar")
            for _ in range(n):
                (b,) = timed_batches(bare, 1)
                (e,) = timed_batches(traced, 1)
                samples["none"].append(b)
                samples["enabled"].append(e)
                pairs.append(e / b)
        return statistics.median(pairs)

    def test_process_mode_tracing_within_budget(self):
        cluster_modes = ("none", "enabled")
        samples: dict[str, list[float]] = {mode: [] for mode in cluster_modes}
        n = 6 if full_scale() else 4
        # Two independent cluster spawns: a load spike or unlucky worker
        # placement that lasts a whole block must hit both blocks to skew
        # the verdict, because the gate takes the better block's median.
        block_medians = [self.measure_block(n, samples) for _ in range(2)]
        tracing_ratio = min(block_medians)
        best = {mode: min(times) for mode, times in samples.items()}

        rows = [
            (mode, f"{best[mode] * 1e3:.2f}", f"{best[mode] / best['none']:.3f}x")
            for mode in cluster_modes
        ]
        table = ascii_table(("mode", "best ms", "vs bare"), rows)
        emit_report("obs_tracing_overhead", table)
        emit_json(
            "obs_tracing_overhead",
            {
                "n_shards": 2,
                "executor": "process",
                "rounds_per_batch": CLUSTER_ROUNDS,
                "batches": CLUSTER_BATCHES,
                "repeats": n,
                "blocks": 2,
                "best_seconds": best,
                "samples_seconds": samples,
                "block_medians": block_medians,
                "tracing_ratio": tracing_ratio,
                "budget": TRACING_BUDGET,
            },
        )
        assert tracing_ratio <= TRACING_BUDGET, (
            f"traced process-mode run_batch is {tracing_ratio:.3f}x the"
            f" bare cluster (best block median, budget {TRACING_BUDGET}x)"
        )

    def test_sample_chrome_trace_artifact(self):
        # One sinked run (untimed — sink I/O is out of scope for the gate)
        # whose merged parent+worker trace becomes the CI trace artifact.
        sink_path = RESULTS_DIR / "obs_trace_sample.jsonl"
        telemetry = Telemetry(sink=sink_path)
        with make_cluster(telemetry) as cluster:
            cluster.run_batch(8, engine="scalar")
            cluster.run_batch(8, engine="vectorized")
        telemetry.close()  # flush the sink before replaying it
        records = read_jsonl(sink_path)
        forest = build_forest(records)
        assert forest.orphans == [], "sample trace must be a well-formed forest"
        assert {root.pid for root in forest.roots if root.children}
        chrome = to_chrome_trace(records)
        out = RESULTS_DIR / "obs_trace_sample_chrome.json"
        out.write_text(json.dumps(chrome, indent=2, sort_keys=True))
        pids = {entry["pid"] for entry in chrome["traceEvents"]}
        assert len(pids) >= 3, "trace should span the parent and both workers"
        emit_report(
            "obs_trace_sample",
            f"{len(records)} records, {len(forest.roots)} roots, "
            f"{len(pids)} pids -> {out.name} "
            "(load in chrome://tracing or https://ui.perfetto.dev)",
        )
