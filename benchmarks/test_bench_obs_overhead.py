"""Telemetry overhead guard: disabled telemetry must be free.

The observability layer is designed so a server constructed without
telemetry — or with ``Telemetry(enabled=False)`` — pays only a per-batch
attribute check, never per-round or per-probe work. This micro-benchmark
enforces that contract in CI: it times ``run_batch`` in three modes
(``none``: no telemetry object at all, the pre-telemetry baseline;
``disabled``: a telemetry object with recording off; ``enabled``: full
recording) with the repeats *interleaved* so thermal/scheduler drift hits
every mode equally, takes the min over repeats as the noise-resistant
estimate, and asserts the disabled mode is within 3% of the baseline.

The enabled-mode ratio is recorded (not asserted) so the perf trajectory
of the recording path itself stays visible across commits.
"""

from __future__ import annotations

import time

from conftest import emit_json, emit_report, full_scale

from repro.engine import BernoulliOracle
from repro.experiments import ascii_table
from repro.obs import Telemetry
from repro.service import QueryServer, synthetic_population, synthetic_registry

N_QUERIES = 100
ROUNDS = 60
OVERHEAD_BUDGET = 1.03

MODES = ("none", "disabled", "enabled")


def repeats() -> int:
    return 9 if full_scale() else 5


def make_telemetry(mode: str) -> Telemetry | None:
    if mode == "none":
        return None
    # In-memory only: sink I/O is a real cost of *enabled* telemetry in
    # production, but this guard isolates the instrumentation overhead.
    return Telemetry(enabled=(mode == "enabled"))


def timed_batch(mode: str) -> float:
    registry = synthetic_registry(8, seed=21)
    population = synthetic_population(N_QUERIES, registry, seed=22)
    server = QueryServer(
        registry, BernoulliOracle(seed=23), telemetry=make_telemetry(mode)
    )
    for name, tree in population:
        server.register(name, tree)
    # Warm plan/window caches so the timed region is steady-state serving.
    server.run_batch(2, engine="vectorized")
    start = time.perf_counter()
    server.run_batch(ROUNDS, engine="vectorized")
    return time.perf_counter() - start


class TestTelemetryOverhead:
    def test_disabled_telemetry_within_budget(self):
        samples: dict[str, list[float]] = {mode: [] for mode in MODES}
        for _ in range(repeats()):
            for mode in MODES:
                samples[mode].append(timed_batch(mode))
        best = {mode: min(times) for mode, times in samples.items()}
        disabled_ratio = best["disabled"] / best["none"]
        enabled_ratio = best["enabled"] / best["none"]

        rows = [
            (
                mode,
                f"{best[mode] * 1e3:.2f}",
                f"{N_QUERIES * ROUNDS / best[mode]:,.0f}",
                f"{best[mode] / best['none']:.3f}x",
            )
            for mode in MODES
        ]
        table = ascii_table(("mode", "best ms", "evals/s", "vs baseline"), rows)
        emit_report("obs_overhead", table)
        emit_json(
            "obs_overhead",
            {
                "n_queries": N_QUERIES,
                "rounds": ROUNDS,
                "repeats": repeats(),
                "best_seconds": best,
                "samples_seconds": samples,
                "disabled_ratio": disabled_ratio,
                "enabled_ratio": enabled_ratio,
                "budget": OVERHEAD_BUDGET,
            },
        )
        assert disabled_ratio <= OVERHEAD_BUDGET, (
            f"disabled-telemetry run_batch is {disabled_ratio:.3f}x the"
            f" no-telemetry baseline (budget {OVERHEAD_BUDGET}x)"
        )
