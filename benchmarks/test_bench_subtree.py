"""Sub-tree sharing: clause-level plan reuse where whole-tree caching is blind.

The population is the whole-tree cache's worst case and the clause tier's
best case: every query is a *distinct* 3-combination of a shared 12-clause
pool, so no two whole-tree canonical keys ever collide while every AND
clause recurs across many queries. The bench records both hit rates (the
acceptance invariant: subtree strictly exceeds whole-tree, which stays at
zero), the store's bounded footprint (interned trees/clauses/leaves), the
admission-time effect of clause reuse, and cost parity across unsharded,
thread-sharded and process-sharded serving.
"""

from __future__ import annotations

import time
from itertools import combinations

import numpy as np
from conftest import emit_json, emit_report, full_scale

from repro.cluster import ClusterServer, default_oracle_factory
from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.engine import BernoulliOracle
from repro.experiments import ascii_table
from repro.service import QueryServer, SubtreeStore, synthetic_registry

ROUNDS = 10
POOL_CLAUSES = 12
CLAUSES_PER_QUERY = 3


def subtree_population(registry, n_queries: int, seed: int):
    """``n_queries`` distinct clause combinations over one shared pool."""
    rng = np.random.default_rng(seed)
    names = list(registry.names)
    costs = registry.cost_table()
    pool = []
    for _ in range(POOL_CLAUSES):
        clause = [
            Leaf(
                names[int(rng.integers(len(names)))],
                int(rng.integers(1, 5)),
                float(rng.uniform(0.1, 0.9)),
            )
            for _ in range(int(rng.integers(2, 4)))
        ]
        pool.append(clause)
    combos = list(combinations(range(POOL_CLAUSES), CLAUSES_PER_QUERY))[:n_queries]
    population = []
    for q, combo in enumerate(combos):
        groups = [list(pool[i]) for i in combo]
        used = {leaf.stream for group in groups for leaf in group}
        tree = DnfTree(groups, {stream: costs[stream] for stream in used})
        population.append((f"q{q:03d}", tree))
    return population


def serve(n_queries: int, *, substore: bool, seed: int = 7):
    registry = synthetic_registry(8, seed=seed)
    population = subtree_population(registry, n_queries, seed + 1)
    server = QueryServer(
        registry,
        BernoulliOracle(seed=9),
        plan_cache=256,
        substore=SubtreeStore() if substore else False,
    )
    admit_start = time.perf_counter()
    for name, tree in population:
        server.register(name, tree)
    admit_seconds = time.perf_counter() - admit_start
    report = server.run_batch(ROUNDS)
    return server, report, admit_seconds


class TestSubtreeSharing:
    def test_subtree_hit_rate_beats_whole_tree(self):
        n_queries = 120 if full_scale() else 40
        rows, records = [], []
        baseline_cost = None
        for substore in (False, True):
            server, report, admit_s = serve(n_queries, substore=substore)
            stats = server.plan_cache.stats()
            store_stats = server.substore.stats() if server.substore else {}
            rows.append(
                (
                    "on" if substore else "off",
                    n_queries,
                    f"{admit_s * 1e3:.1f}",
                    f"{stats['hit_rate']:.0%}",
                    f"{stats['subtree_hit_rate']:.0%}",
                    f"{store_stats.get('trees', 0):.0f}",
                    f"{store_stats.get('clauses', 0):.0f}",
                    f"{store_stats.get('leaves', 0):.0f}",
                    f"{report.total_cost:.6g}",
                )
            )
            records.append(
                {
                    "substore": substore,
                    "n_queries": n_queries,
                    "rounds": ROUNDS,
                    "admit_seconds": admit_s,
                    "hit_rate": stats["hit_rate"],
                    "subtree_hit_rate": stats["subtree_hit_rate"],
                    "clause_hits": stats["clause_hits"],
                    "clause_misses": stats["clause_misses"],
                    "total_cost": report.total_cost,
                    **{f"store_{k}": v for k, v in store_stats.items()},
                }
            )
            # Zero whole-tree isomorphs by construction: every admission is a
            # whole-tree miss regardless of the store.
            assert stats["hit_rate"] == 0.0
            if substore:
                # The acceptance invariant: partial sharing fires where
                # whole-tree sharing cannot.
                assert stats["subtree_hit_rate"] > stats["hit_rate"]
                # Memory bound: one interned tree per distinct shape, one
                # clause per distinct pool clause — not per registered query.
                assert store_stats["trees"] == float(n_queries)
                assert store_stats["clauses"] == float(POOL_CLAUSES)
            else:
                assert stats["subtree_hit_rate"] == 0.0
            # Interning is semantically invisible: identical costs either way.
            if baseline_cost is None:
                baseline_cost = report.total_cost
            else:
                assert report.total_cost == baseline_cost
        table = ascii_table(
            (
                "substore",
                "queries",
                "admit ms",
                "tree hits",
                "clause hits",
                "trees",
                "clauses",
                "leaves",
                "total cost",
            ),
            rows,
        )
        emit_report("subtree_sharing", table)
        emit_json("subtree_sharing", {"cells": records})

    def test_cluster_cost_parity_with_clause_sharing(self):
        n_queries, rounds, seed = 15, 3, 11
        totals = {}
        for mode in ("unsharded", "thread", "process"):
            registry = synthetic_registry(8, seed=seed)
            population = subtree_population(registry, n_queries, seed + 1)
            if mode == "unsharded":
                server = QueryServer(registry)
                factory = default_oracle_factory(seed)
                for name, tree in population:
                    server.register(name, tree, oracle=factory(name))
                totals[mode] = server.run_batch(rounds).total_cost
            else:
                cluster = ClusterServer(
                    registry, n_shards=2, executor=mode, seed=seed
                )
                try:
                    cluster.register_population(population)
                    totals[mode] = cluster.run_batch(rounds).total_cost
                    stats = cluster.plan_cache.stats()
                    assert stats["subtree_hit_rate"] > stats["hit_rate"]
                finally:
                    cluster.close()
        assert totals["thread"] == totals["unsharded"]
        assert totals["process"] == totals["unsharded"]
        emit_json(
            "subtree_cluster_parity",
            {"n_queries": n_queries, "rounds": rounds, "totals": totals},
        )
