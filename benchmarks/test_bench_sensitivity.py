"""Sensitivity bench: how robust are the paper's conclusions to noisy
probability estimates?

The schedulers consume estimated leaf probabilities; this bench perturbs
them (truncated Gaussian, scale epsilon), plans on the noisy tree, pays on
the true tree, and reports mean/worst regret per heuristic — plus whether
the paper's heuristic *ranking* survives the noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ascii_table, probability_sensitivity
from repro.experiments.sensitivity import perturb_probabilities
from repro.core.cost import dnf_schedule_cost
from repro.core.heuristics import get_scheduler
from repro.generators import random_dnf_tree

from benchmarks.conftest import emit_report, full_scale

HEURISTICS = (
    "and-inc-c-over-p-dynamic",
    "and-inc-c-over-p-static",
    "leaf-inc-c",
    "stream-ordered",
)


@pytest.fixture(scope="module")
def sensitivity_points():
    n = 300 if full_scale() else 80
    return probability_sensitivity(
        heuristics=HEURISTICS,
        epsilons=(0.0, 0.05, 0.1, 0.2, 0.4),
        n_instances=n,
        seed=0,
    )


@pytest.fixture(scope="module")
def sensitivity_report(sensitivity_points):
    rows = [
        (p.heuristic, p.epsilon, p.mean_regret * 100.0, p.worst_regret * 100.0)
        for p in sensitivity_points
    ]
    table = ascii_table(
        ("heuristic", "epsilon", "mean regret %", "worst regret %"), rows
    )
    emit_report("sensitivity", table)
    return sensitivity_points


class TestSensitivity:
    def test_regret_monotone_and_bounded(self, benchmark, sensitivity_report):
        points = sensitivity_report
        for name in HEURISTICS:
            series = sorted(
                (p.epsilon, p.mean_regret) for p in points if p.heuristic == name
            )
            assert series[0] == (0.0, pytest.approx(0.0, abs=1e-12))
            # regret at the largest noise dominates the noiseless case
            assert series[-1][1] >= series[0][1]
            # and stays within a sane envelope at epsilon=0.4
            assert series[-1][1] < 2.0
        rng = np.random.default_rng(1)
        tree = random_dnf_tree(rng, 4, 5, 2.0)
        benchmark(perturb_probabilities, tree, 0.2, rng)

    def test_ranking_stable_under_realistic_noise(self, sensitivity_report):
        """Under epsilon = 0.1 noise, the paper's winner still beats the
        stream-ordered prior art on true (realized) cost."""
        rng = np.random.default_rng(2)
        winner = get_scheduler("and-inc-c-over-p-dynamic")
        prior = get_scheduler("stream-ordered")
        winner_costs = []
        prior_costs = []
        for _ in range(120):
            tree = random_dnf_tree(rng, int(rng.integers(2, 7)), int(rng.integers(2, 7)), 2.0)
            noisy = perturb_probabilities(tree, 0.1, rng)
            winner_costs.append(dnf_schedule_cost(tree, winner.schedule(noisy), validate=False))
            prior_costs.append(dnf_schedule_cost(tree, prior.schedule(noisy), validate=False))
        assert float(np.mean(winner_costs)) < float(np.mean(prior_costs))
