"""Drift adaptation benchmark: static vs adaptive vs oracle re-planning.

Regenerates the ISSUE-3 acceptance numbers at a reproducible seed and
records them to ``benchmarks/results/drift_adaptation.txt``: under a step
change in leaf selectivities the adaptive server's post-drift mean round
cost stays within 10% of the oracle-replan baseline while the static plan
is measurably worse. ``REPRO_BENCH_FULL=1`` scales the population and
horizon up.
"""

from __future__ import annotations

from conftest import emit_json, emit_report, full_scale

from repro.experiments import ascii_table
from repro.experiments.drift import run_drift


class TestDriftAdaptation:
    def test_adaptive_tracks_oracle_static_does_not(self):
        if full_scale():
            kwargs = dict(n_queries=40, cluster_size=4, rounds=1200, drift_round=300)
        else:
            kwargs = dict(n_queries=12, cluster_size=4, rounds=360, drift_round=120)
        report = run_drift(seed=0, **kwargs)
        lag = report.detection_lag
        lines = [
            report.describe(),
            "",
            ascii_table(report.summary_headers(), report.summary_rows()),
            "",
            f"post-drift mean round cost: static {report.post_drift_mean(report.static):.6g},"
            f" adaptive {report.post_drift_mean(report.adaptive):.6g},"
            f" oracle {report.post_drift_mean(report.oracle):.6g}",
            f"adaptive/oracle = {report.adaptive_vs_oracle:.4f}"
            f" (acceptance: <= 1.10)",
            f"static/oracle   = {report.static_vs_oracle:.4f}"
            f" (acceptance: measurably worse)",
            f"detection lag   = {lag if lag is not None else 'n/a'} rounds,"
            f" adaptive replans = {report.adaptive.replans}",
        ]
        emit_report("drift_adaptation", "\n".join(lines))
        emit_json(
            "drift_adaptation",
            {
                **kwargs,
                "adaptive_vs_oracle": report.adaptive_vs_oracle,
                "static_vs_oracle": report.static_vs_oracle,
                "detection_lag": lag,
                "adaptive_replans": report.adaptive.replans,
            },
        )
        assert report.adaptive_vs_oracle <= 1.10
        assert report.static_vs_oracle >= 1.15
