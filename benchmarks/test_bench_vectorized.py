"""Scalar-vs-vectorized trial-engine throughput (trials/second).

Runs the 10k-trial battery benchmark across a (N, m) grid with both
engines (identical outcome matrices, so the comparison is pure execution
machinery), asserts the vectorized engine's >=10x speedup on every cell,
and emits both the ASCII table and a machine-readable JSON record
(``benchmarks/results/vectorized_throughput.json``) so the benchmark
trajectory can be tracked across commits.
"""

from __future__ import annotations

from conftest import emit_json, emit_report, full_scale

from repro.experiments import ascii_table, execution_throughput

N_TRIALS = 10_000
MIN_SPEEDUP = 10.0


class TestVectorizedThroughput:
    def test_battery_speedup(self):
        grid = dict(
            n_ands_values=(2, 6, 10) if full_scale() else (2, 10),
            leaves_per_and_values=(5, 10, 20) if full_scale() else (5, 20),
        )
        points = execution_throughput(n_trials=N_TRIALS, seed=0, **grid)
        by_cell: dict[tuple[int, int], dict[str, float]] = {}
        for point in points:
            by_cell.setdefault((point.n_ands, point.leaves_per_and), {})[
                point.engine
            ] = point.trials_per_second

        rows = []
        records = []
        for (n, m), engines in sorted(by_cell.items()):
            speedup = engines["vectorized"] / engines["scalar"]
            rows.append(
                (
                    n,
                    m,
                    f"{engines['scalar']:,.0f}",
                    f"{engines['vectorized']:,.0f}",
                    f"{speedup:.1f}x",
                )
            )
            records.append(
                {
                    "n_ands": n,
                    "leaves_per_and": m,
                    "n_trials": N_TRIALS,
                    "scalar_trials_per_sec": engines["scalar"],
                    "vectorized_trials_per_sec": engines["vectorized"],
                    "speedup": speedup,
                }
            )
            assert speedup >= MIN_SPEEDUP, (
                f"N={n} m={m}: vectorized only {speedup:.1f}x over scalar "
                f"(required >= {MIN_SPEEDUP}x)"
            )

        table = ascii_table(
            ("N (ANDs)", "m (leaves/AND)", "scalar trials/s", "vectorized trials/s", "speedup"),
            rows,
        )
        emit_report("vectorized_throughput", table)
        emit_json("vectorized_throughput", {"cells": records})
